// Package sweep runs batches of independent simulations across a
// worker pool. Every sim.System is single-use and shares no mutable
// state with its siblings, so experiment campaigns (the Figure 3-11
// sweeps) are embarrassingly parallel: the engine fans a []Job out over
// GOMAXPROCS goroutines and returns results in input order, with
// content identical to a serial run regardless of worker count.
//
// An optional Cache memoizes results on disk keyed by a hash of the
// config, so interrupted campaigns resume where they stopped and
// repeated runs (or figures sharing baseline configs) skip finished
// work.
package sweep

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/sim"
)

// Job is one simulation of a sweep: a config plus a human-readable
// label used in progress events and error messages.
type Job struct {
	Label  string
	Config sim.Config
}

// Event reports the completion of one job to Options.Progress.
type Event struct {
	Index   int // job position in the input slice
	Total   int // number of jobs in the sweep
	Done    int // jobs finished so far, including this one
	Label   string
	Key     string // content-address of the config ("" when uncacheable or uncached)
	Cached  bool   // result served from the cache, not a fresh run
	Deduped bool   // result shared from an identical config's single fleet-wide run
	Err     error
	Elapsed time.Duration // wall clock of this job (0 when cached)
}

// JobError is a failed job, carrying its input position and label.
type JobError struct {
	Index int
	Label string
	Err   error
}

// Error implements error.
func (e *JobError) Error() string {
	return fmt.Sprintf("sweep: job %d (%s): %v", e.Index, e.Label, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// Options configures a sweep.
type Options struct {
	// Workers is the number of concurrent simulations (<= 0 means
	// GOMAXPROCS).
	Workers int

	// Cache, when non-nil, serves previously computed results and
	// persists fresh ones after every completion.
	Cache *Cache

	// Progress, when non-nil, is called once per finished job. Calls
	// are serialized across workers; the callback must not block for
	// long.
	Progress func(Event)
}

// Run executes jobs across a worker pool and returns their results in
// input order. Content is independent of the worker count: each
// simulation owns all of its state and derives randomness only from
// its config seed.
//
// The first failing job cancels the rest of the sweep (jobs already
// simulating finish; a single simulation cannot be interrupted). The
// returned error is the recorded failure with the lowest job index,
// wrapped in a *JobError so callers can recover the label and
// position. Cancelling ctx likewise stops dispatch and returns
// ctx.Err() once in-flight jobs drain.
func Run(ctx context.Context, jobs []Job, opts Options) ([]sim.Result, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	st := &state{
		jobs:    jobs,
		results: make([]sim.Result, len(jobs)),
		errs:    make([]error, len(jobs)),
		opts:    opts,
	}

	indexes := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indexes {
				if st.runJob(ctx, i) != nil {
					cancel()
				}
			}
		}()
	}

dispatch:
	for i := range jobs {
		select {
		case indexes <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(indexes)
	wg.Wait()

	for i, err := range st.errs {
		if err != nil {
			return st.results, &JobError{Index: i, Label: jobs[i].Label, Err: err}
		}
	}
	select {
	case <-ctx.Done():
		// Cancelled from outside (our own deferred cancel has not run
		// yet, and no job recorded an error): surface the cancellation.
		return st.results, ctx.Err()
	default:
	}
	return st.results, nil
}

// state is the shared bookkeeping of one Run call. Workers write
// disjoint slice elements; only the progress path needs locking.
type state struct {
	jobs    []Job
	results []sim.Result
	errs    []error
	opts    Options

	progMu sync.Mutex
	done   int // completed jobs; guarded by progMu
}

// runJob executes (or serves from cache) job i and records its outcome.
func (s *state) runJob(ctx context.Context, i int) error {
	if ctx.Err() != nil {
		return nil // sweep is shutting down; leave the slot untouched
	}
	job := s.jobs[i]
	// The key is only worth computing with a cache to consult: for
	// trace-driven configs Key digests every trace file's contents,
	// which an uncached sweep should not pay for.
	var key string
	if s.opts.Cache != nil {
		key, _ = Key(job.Config) // "" for uncacheable configs
		if key != "" {
			if res, ok := s.opts.Cache.Lookup(key); ok {
				s.results[i] = res
				s.report(Event{Index: i, Label: job.Label, Key: key, Cached: true})
				return nil
			}
		}
	}
	start := time.Now()
	res, err := runOne(job.Config)
	if err != nil {
		s.errs[i] = err
		s.report(Event{Index: i, Label: job.Label, Key: key, Err: err, Elapsed: time.Since(start)})
		return err
	}
	if s.opts.Cache != nil && key != "" {
		if err := s.opts.Cache.PutKeyed(key, res); err != nil {
			s.errs[i] = err
			s.report(Event{Index: i, Label: job.Label, Key: key, Err: err, Elapsed: time.Since(start)})
			return err
		}
	}
	s.results[i] = res
	s.report(Event{Index: i, Label: job.Label, Key: key, Elapsed: time.Since(start)})
	return nil
}

// report fills in the sweep-wide counters and forwards ev to the
// progress callback. Counting and callback share one critical section
// so serialized events always carry monotonically increasing Done.
func (s *state) report(ev Event) {
	s.progMu.Lock()
	defer s.progMu.Unlock()
	s.done++
	ev.Done = s.done
	ev.Total = len(s.jobs)
	if s.opts.Progress != nil {
		s.opts.Progress(ev)
	}
}

// runOne builds and runs one simulation.
func runOne(cfg sim.Config) (sim.Result, error) {
	sys, err := sim.New(cfg)
	if err != nil {
		return sim.Result{}, err
	}
	return sys.Run()
}

// StderrProgress is a ready-made Options.Progress sink for CLIs: one
// line per finished config on standard error.
func StderrProgress(ev Event) {
	switch {
	case ev.Err != nil:
		fmt.Fprintf(os.Stderr, "[%d/%d] %s FAILED: %v\n", ev.Done, ev.Total, ev.Label, ev.Err)
	case ev.Cached:
		fmt.Fprintf(os.Stderr, "[%d/%d] %s (cached)\n", ev.Done, ev.Total, ev.Label)
	case ev.Deduped:
		fmt.Fprintf(os.Stderr, "[%d/%d] %s (deduped)\n", ev.Done, ev.Total, ev.Label)
	default:
		fmt.Fprintf(os.Stderr, "[%d/%d] %s (%v)\n", ev.Done, ev.Total, ev.Label, ev.Elapsed.Round(time.Millisecond))
	}
}
