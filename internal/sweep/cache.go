package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
)

// cacheVersion guards the on-disk format; bump it when sim.Result or
// sim.Config change shape so stale files are rejected instead of
// half-decoded. It does NOT fingerprint the simulator model: entries
// are keyed by config alone, so after changing simulation code itself
// delete the results file (keeping hits valid across rebuilds is what
// makes the cache useful while iterating on campaign scripts).
const cacheVersion = 1

// ErrUncacheable marks configs that cannot be keyed: a Custom mechanism
// embeds an arbitrary function whose behaviour the hash cannot capture,
// and a trace file the process cannot read leaves the simulation input
// unfingerprintable.
var ErrUncacheable = errors.New("sweep: config cannot be content-addressed")

// Key returns the cache key of cfg: the hex SHA-256 of its canonical
// JSON encoding plus, for trace-driven configs, a digest of each trace
// file's contents. Hashing the paths alone would let a trace
// regenerated at the same path silently serve a stale cached Result
// (and a daemon's persistent cache would serve it across restarts), so
// the key changes whenever the bytes behind a path change. Two configs
// share a key exactly when every exported field matches and every
// referenced trace file holds the same bytes, so a key identifies one
// deterministic simulation outcome. Configs without trace files hash
// exactly as before, keeping historical cache entries valid.
func Key(cfg sim.Config) (string, error) {
	if cfg.Mechanism == sim.Custom || cfg.CustomMechanism != nil {
		return "", fmt.Errorf("%w: custom mechanisms embed arbitrary code", ErrUncacheable)
	}
	blob, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("sweep: hashing config: %w", err)
	}
	h := sha256.New()
	h.Write(blob)
	for i, path := range cfg.TraceFiles {
		if path == "" {
			continue
		}
		sum, err := fileDigest(path)
		if err != nil {
			// The simulation itself will surface the real failure; a
			// result must never be stored under a key whose inputs
			// could not be fingerprinted.
			return "", fmt.Errorf("%w: trace %s: %v", ErrUncacheable, path, err)
		}
		fmt.Fprintf(h, "|trace%d:%x", i, sum)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// fileDigest returns the SHA-256 of the file's contents.
func fileDigest(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return nil, err
	}
	return h.Sum(nil), nil
}

// cacheFile is the persisted form: {"version":1,"entries":{key:Result}}.
type cacheFile struct {
	Version int                   `json:"version"`
	Entries map[string]sim.Result `json:"entries"`
}

// Cache is a disk-backed result store shared by the workers of a sweep
// (and across sweeps: figures reusing a baseline config hit entries
// written by earlier figures or earlier processes). Safe for concurrent
// use within one process; concurrent processes on the same file are
// not coordinated.
type Cache struct {
	path string

	mu      sync.Mutex
	entries map[string]sim.Result
	seq     uint64 // bumped per mutation; orders snapshots

	// writeMu covers disk I/O only, so workers flushing the store do
	// not block Get/Put on the entry map.
	writeMu sync.Mutex
	written uint64 // seq of the newest snapshot on disk

	// Degraded-mode state, guarded by writeMu: after a disk write fails
	// (disk full, read-only filesystem) the cache flips to memory-only —
	// entries stay servable, Put stops returning errors, and disk writes
	// are suppressed except for one probe per probeEvery window. A probe
	// that lands restores normal write-through (the snapshot is always
	// complete, so nothing accumulated while degraded is lost).
	degraded   bool
	writeErrs  uint64
	restores   uint64
	lastProbe  time.Time
	probeEvery time.Duration // 0 = defaultStorageProbe

	recovery string // warning from OpenCache quarantining a bad snapshot
}

// defaultStorageProbe spaces restore probes while degraded.
const defaultStorageProbe = time.Second

// OpenCache loads the results file at path, starting empty when the
// file does not exist yet.
//
// A snapshot that cannot be decoded — truncated by a crash, hand-edited
// into invalid JSON, or written by a different format version — does
// not fail the open: the bad file is moved aside to <path>.corrupt
// (replacing any previous quarantine) and the cache starts empty, so a
// campaign resume degrades to a fresh run instead of bricking until
// someone deletes the file by hand. RecoveryNote reports when that
// happened so callers can warn the user.
func OpenCache(path string) (*Cache, error) {
	c := &Cache{path: path, entries: map[string]sim.Result{}}
	blob, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: opening cache: %w", err)
	}
	var f cacheFile
	var reason string
	switch err := json.Unmarshal(blob, &f); {
	case err != nil:
		reason = fmt.Sprintf("not a results file: %v", err)
	case f.Version != cacheVersion:
		reason = fmt.Sprintf("version %d, want %d", f.Version, cacheVersion)
	}
	if reason != "" {
		quarantine := path + ".corrupt"
		if err := os.Rename(path, quarantine); err != nil {
			return nil, fmt.Errorf("sweep: cache %s is %s, and quarantining it failed: %w", path, reason, err)
		}
		c.recovery = fmt.Sprintf("sweep: cache %s is %s; moved it to %s and starting empty", path, reason, quarantine)
		return c, nil
	}
	if f.Entries != nil {
		c.entries = f.Entries
	}
	return c, nil
}

// RecoveryNote returns a human-readable warning when OpenCache found an
// undecodable snapshot and quarantined it, or "" when the open was
// clean. Callers should surface it (stderr, logs) so a silently emptied
// cache does not masquerade as a first run.
func (c *Cache) RecoveryNote() string { return c.recovery }

// Path returns the backing file.
func (c *Cache) Path() string { return c.path }

// Len returns the number of stored results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Get returns the stored result for cfg, if any. Uncacheable configs
// always miss.
func (c *Cache) Get(cfg sim.Config) (sim.Result, bool) {
	key, err := Key(cfg)
	if err != nil {
		return sim.Result{}, false
	}
	return c.Lookup(key)
}

// Lookup returns the stored result for a raw content-address key (the
// hex SHA-256 Key of some config), letting services serve results to
// clients that hold only the key.
func (c *Cache) Lookup(key string) (sim.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.entries[key]
	return res, ok
}

// Keys returns the content-address keys of all stored results, sorted.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	c.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Put stores the result for cfg and flushes the file, so an
// interrupted campaign loses at most the jobs still in flight.
// Uncacheable configs are skipped without error.
func (c *Cache) Put(cfg sim.Config, res sim.Result) error {
	key, err := Key(cfg)
	if errors.Is(err, ErrUncacheable) {
		return nil
	}
	if err != nil {
		return err
	}
	return c.PutKeyed(key, res)
}

// PutKeyed stores res under an already computed content-address key and
// flushes the file. Callers that hold the key (the sweep engine, the
// fleet dispatcher) use it to avoid re-hashing the config — for
// trace-driven configs Key re-digests every trace file, which is worth
// doing once per job, not once per cache operation.
func (c *Cache) PutKeyed(key string, res sim.Result) error {
	c.mu.Lock()
	c.entries[key] = res
	c.seq++
	seq := c.seq
	snapshot := make(map[string]sim.Result, len(c.entries))
	for k, v := range c.entries {
		snapshot[k] = v
	}
	c.mu.Unlock()
	return c.write(seq, snapshot)
}

// write lands one snapshot atomically (temp file + rename), so a crash
// mid-write never corrupts the previous on-disk state. Encoding and
// I/O run outside the entry-map mutex, so flushing never blocks
// Get/Put; concurrent completions coalesce — a snapshot older than
// what already reached disk is dropped instead of queueing workers.
//
// Disk failures never propagate: the cache is an availability
// optimization, and a full or read-only disk must not fail the
// simulation whose result is being stored. Instead the cache degrades
// to memory-only (StorageHealth reports it) and retries the disk once
// per probe window — each snapshot is complete, so the first probe
// that lands restores everything accumulated while degraded.
func (c *Cache) write(seq uint64, snapshot map[string]sim.Result) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if seq <= c.written {
		return nil
	}
	now := time.Now()
	if c.degraded && now.Sub(c.lastProbe) < c.probeInterval() {
		return nil // memory-only: skip the disk until the next probe window
	}
	blob, err := json.Marshal(cacheFile{Version: cacheVersion, Entries: snapshot})
	if err != nil {
		// An unencodable result is a programming error, not a disk state;
		// surface it instead of masking it as degradation.
		return fmt.Errorf("sweep: encoding cache: %w", err)
	}
	tmp := c.path + ".tmp"
	//lint:allow lockio writeMu is a dedicated I/O-serialization mutex ordering snapshot writes; the entry map uses a separate lock, so Get/Put never wait on disk
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		c.noteWriteErrorLocked(now)
		return nil
	}
	//lint:allow lockio writeMu is a dedicated I/O-serialization mutex ordering snapshot writes; rename completes the atomic temp-file publish started above
	if err := os.Rename(tmp, c.path); err != nil {
		c.noteWriteErrorLocked(now)
		return nil
	}
	if c.degraded {
		c.degraded = false
		c.restores++
	}
	c.written = seq
	return nil
}

// noteWriteErrorLocked records a failed disk write and (re)enters
// degraded memory-only mode. Caller holds writeMu.
func (c *Cache) noteWriteErrorLocked(now time.Time) {
	c.writeErrs++
	c.degraded = true
	c.lastProbe = now
}

// probeInterval returns the configured restore-probe spacing.
func (c *Cache) probeInterval() time.Duration {
	if c.probeEvery > 0 {
		return c.probeEvery
	}
	return defaultStorageProbe
}

// SetStorageProbeInterval overrides how often a degraded cache probes
// the disk for recovery (default one second). Zero or negative restores
// the default.
func (c *Cache) SetStorageProbeInterval(d time.Duration) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if d < 0 {
		d = 0
	}
	c.probeEvery = d
}

// StorageHealth reports the degraded-mode state: whether the cache is
// currently memory-only, how many disk writes have failed, and how many
// times a probe restored write-through.
func (c *Cache) StorageHealth() (degraded bool, writeErrs, restores uint64) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return c.degraded, c.writeErrs, c.restores
}
