package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestKeyStableAndDiscriminating(t *testing.T) {
	a := tinyConfig("lbm", 1)
	k1, err := Key(a)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(a)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("same config hashed to different keys")
	}
	b := a
	b.Seed = 2
	kb, err := Key(b)
	if err != nil {
		t.Fatal(err)
	}
	if kb == k1 {
		t.Error("different seeds share a key")
	}
}

func TestKeyRejectsCustomMechanism(t *testing.T) {
	cfg := tinyConfig("lbm", 1)
	cfg.Mechanism = sim.Custom
	if _, err := Key(cfg); err == nil {
		t.Error("custom-mechanism config was keyed")
	}
}

// TestCacheRoundTrip checks a stored result decodes back identical, so
// cached campaigns reproduce fresh ones exactly.
func TestCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig("lbm", 9)
	res := runSerial(t, cfg)
	if err := c.Put(cfg, res); err != nil {
		t.Fatal(err)
	}

	// A fresh open must see the persisted entry, not just the in-memory
	// copy.
	reopened, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 1 {
		t.Fatalf("reopened cache has %d entries, want 1", reopened.Len())
	}
	got, ok := reopened.Get(cfg)
	if !ok {
		t.Fatal("stored result missing after reopen")
	}
	if !reflect.DeepEqual(got, res) {
		t.Errorf("cached result differs from original:\ngot  %+v\nwant %+v", got, res)
	}
}

// TestSweepResume simulates resuming a campaign: the first sweep
// persists everything; a second sweep over the same configs must serve
// every job from the cache and return identical results.
func TestSweepResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	cache, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{Label: "a", Config: tinyConfig("lbm", 1)},
		{Label: "b", Config: tinyConfig("mcf", 2)},
	}
	first, err := Run(context.Background(), jobs, Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}

	cache2, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	var cached int
	second, err := Run(context.Background(), jobs, Options{
		Workers: 2,
		Cache:   cache2,
		Progress: func(ev Event) {
			if ev.Cached {
				cached++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cached != len(jobs) {
		t.Errorf("%d jobs served from cache, want %d", cached, len(jobs))
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached results differ from fresh results")
	}
}

// TestOpenCacheQuarantinesGarbage is the regression test for corrupt
// snapshots bricking campaign resume: a truncated or hand-mangled file
// must be moved aside to <path>.corrupt and the cache must come up
// empty and usable, with the incident reported via RecoveryNote.
func TestOpenCacheQuarantinesGarbage(t *testing.T) {
	for _, tc := range []struct {
		name string
		blob string
	}{
		{"truncated", `{"version":1,"entries":{"abc":{"Sat`},
		{"not-json", "not json{"},
		{"future-version", `{"version":99,"entries":{}}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "results.json")
			if err := os.WriteFile(path, []byte(tc.blob), 0o644); err != nil {
				t.Fatal(err)
			}
			c, err := OpenCache(path)
			if err != nil {
				t.Fatalf("corrupt snapshot failed the open: %v", err)
			}
			if c.Len() != 0 {
				t.Errorf("recovered cache has %d entries, want 0", c.Len())
			}
			if c.RecoveryNote() == "" {
				t.Error("no recovery warning for a quarantined snapshot")
			}
			moved, err := os.ReadFile(path + ".corrupt")
			if err != nil {
				t.Fatalf("bad snapshot was not moved aside: %v", err)
			}
			if string(moved) != tc.blob {
				t.Error("quarantined file does not preserve the bad snapshot")
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Errorf("bad snapshot still at %s (err %v)", path, err)
			}

			// The recovered cache must be fully usable: Put persists a
			// fresh snapshot at the original path.
			cfg := tinyConfig("lbm", 3)
			res := runSerial(t, cfg)
			if err := c.Put(cfg, res); err != nil {
				t.Fatal(err)
			}
			reopened, err := OpenCache(path)
			if err != nil {
				t.Fatal(err)
			}
			if reopened.RecoveryNote() != "" {
				t.Error("clean reopen carries a recovery warning")
			}
			if got, ok := reopened.Get(cfg); !ok || !reflect.DeepEqual(got, res) {
				t.Error("result written after recovery did not persist")
			}
		})
	}
}

// writeTrace dumps records of the form "<bubbles> <addr>" so tests can
// build valid trace-driven configs with controlled file contents.
func writeTrace(t *testing.T, path string, addrs []uint64) {
	t.Helper()
	var blob []byte
	for i, a := range addrs {
		blob = append(blob, []byte(fmt.Sprintf("%d %#x\n", i%3, a))...)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// traceConfig builds a tiny single-core config replaying path.
func traceConfig(path string) sim.Config {
	cfg := tinyConfig("lbm", 1)
	cfg.TraceFiles = []string{path}
	return cfg
}

// TestKeyDigestsTraceContents pins the cache-staleness fix: the key
// must fingerprint trace file *contents*, not just their paths, so a
// trace regenerated at the same path cannot serve a stale result.
func TestKeyDigestsTraceContents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "core0.trace")
	writeTrace(t, path, []uint64{0x1000, 0x2000, 0x3000})
	k1, err := Key(traceConfig(path))
	if err != nil {
		t.Fatal(err)
	}

	// Same path, different bytes: the key must change.
	writeTrace(t, path, []uint64{0x4000, 0x5000, 0x6000})
	k2, err := Key(traceConfig(path))
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("rewriting the trace file did not change the key")
	}

	// Restoring the original bytes must restore the original key, so
	// identical inputs still share cache entries.
	writeTrace(t, path, []uint64{0x1000, 0x2000, 0x3000})
	k3, err := Key(traceConfig(path))
	if err != nil {
		t.Fatal(err)
	}
	if k3 != k1 {
		t.Error("identical trace bytes hashed to different keys")
	}

	// Generator-only configs must keep their historical keys: an empty
	// TraceFiles slice and a nil one hash identically.
	plain := tinyConfig("lbm", 1)
	kNil, err := Key(plain)
	if err != nil {
		t.Fatal(err)
	}
	if kNil == k1 {
		t.Error("trace-driven config shares a key with the generator config")
	}

	// An unreadable trace makes the config uncacheable rather than
	// silently keyed by path.
	missing := traceConfig(filepath.Join(t.TempDir(), "no-such.trace"))
	if _, err := Key(missing); !errors.Is(err, ErrUncacheable) {
		t.Errorf("missing trace file: got %v, want ErrUncacheable", err)
	}
}

// TestTraceRewriteInvalidatesCache is the end-to-end regression for the
// staleness bug: run a trace-driven config through a cached sweep,
// regenerate the trace at the same path, and rerun — the second sweep
// must simulate afresh and produce the new trace's result, not serve
// the stale cached one (which a persistent daemon cache would otherwise
// do across restarts too).
func TestTraceRewriteInvalidatesCache(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "core0.trace")
	cachePath := filepath.Join(dir, "results.json")

	// Two address streams far enough apart to measure differently.
	first := make([]uint64, 64)
	second := make([]uint64, 64)
	for i := range first {
		first[i] = uint64(i) * 64
		second[i] = uint64(i) * 1 << 20
	}

	writeTrace(t, path, first)
	cache, err := OpenCache(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{{Label: "trace", Config: traceConfig(path)}}
	res1, err := Run(context.Background(), jobs, Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}

	// Regenerate the trace at the same path, reopen the cache as a
	// restarted process would, and rerun.
	writeTrace(t, path, second)
	reopened, err := OpenCache(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	var cached bool
	res2, err := Run(context.Background(), jobs, Options{
		Workers:  1,
		Cache:    reopened,
		Progress: func(ev Event) { cached = cached || ev.Cached },
	})
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("rewritten trace was served from the cache")
	}
	if reflect.DeepEqual(res1[0], res2[0]) {
		t.Error("rewritten trace reproduced the stale result")
	}

	// Unchanged inputs still resume from the cache.
	var hits int
	res3, err := Run(context.Background(), jobs, Options{
		Workers: 1,
		Cache:   reopened,
		Progress: func(ev Event) {
			if ev.Cached {
				hits++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Errorf("identical rerun had %d cache hits, want 1", hits)
	}
	if !reflect.DeepEqual(res2[0], res3[0]) {
		t.Error("cached rerun differs from the fresh run")
	}
}

// TestCacheLookupByKey covers the content-addressed read path used by
// GET /v1/results/{key}.
func TestCacheLookupByKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig("lbm", 11)
	res := runSerial(t, cfg)
	if err := c.Put(cfg, res); err != nil {
		t.Fatal(err)
	}
	key, err := Key(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Lookup(key)
	if !ok {
		t.Fatal("stored key misses on Lookup")
	}
	if !reflect.DeepEqual(got, res) {
		t.Error("Lookup returned a different result than Put stored")
	}
	if _, ok := c.Lookup("no-such-key"); ok {
		t.Error("unknown key hit")
	}
	if keys := c.Keys(); len(keys) != 1 || keys[0] != key {
		t.Errorf("Keys() = %v, want [%s]", keys, key)
	}
}
