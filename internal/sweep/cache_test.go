package sweep

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestKeyStableAndDiscriminating(t *testing.T) {
	a := tinyConfig("lbm", 1)
	k1, err := Key(a)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(a)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("same config hashed to different keys")
	}
	b := a
	b.Seed = 2
	kb, err := Key(b)
	if err != nil {
		t.Fatal(err)
	}
	if kb == k1 {
		t.Error("different seeds share a key")
	}
}

func TestKeyRejectsCustomMechanism(t *testing.T) {
	cfg := tinyConfig("lbm", 1)
	cfg.Mechanism = sim.Custom
	if _, err := Key(cfg); err == nil {
		t.Error("custom-mechanism config was keyed")
	}
}

// TestCacheRoundTrip checks a stored result decodes back identical, so
// cached campaigns reproduce fresh ones exactly.
func TestCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	c, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig("lbm", 9)
	res := runSerial(t, cfg)
	if err := c.Put(cfg, res); err != nil {
		t.Fatal(err)
	}

	// A fresh open must see the persisted entry, not just the in-memory
	// copy.
	reopened, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 1 {
		t.Fatalf("reopened cache has %d entries, want 1", reopened.Len())
	}
	got, ok := reopened.Get(cfg)
	if !ok {
		t.Fatal("stored result missing after reopen")
	}
	if !reflect.DeepEqual(got, res) {
		t.Errorf("cached result differs from original:\ngot  %+v\nwant %+v", got, res)
	}
}

// TestSweepResume simulates resuming a campaign: the first sweep
// persists everything; a second sweep over the same configs must serve
// every job from the cache and return identical results.
func TestSweepResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	cache, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{Label: "a", Config: tinyConfig("lbm", 1)},
		{Label: "b", Config: tinyConfig("mcf", 2)},
	}
	first, err := Run(context.Background(), jobs, Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}

	cache2, err := OpenCache(path)
	if err != nil {
		t.Fatal(err)
	}
	var cached int
	second, err := Run(context.Background(), jobs, Options{
		Workers: 2,
		Cache:   cache2,
		Progress: func(ev Event) {
			if ev.Cached {
				cached++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cached != len(jobs) {
		t.Errorf("%d jobs served from cache, want %d", cached, len(jobs))
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached results differ from fresh results")
	}
}

func TestOpenCacheRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	if err := os.WriteFile(path, []byte("not json{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCache(path); err == nil {
		t.Error("corrupt cache file accepted")
	}

	if err := os.WriteFile(path, []byte(`{"version":99,"entries":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCache(path); err == nil {
		t.Error("future cache version accepted")
	}
}
