package sweep

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/sim"
)

// benchJobs builds a batch of independent small simulations.
func benchJobs(n int) []Job {
	names := []string{"lbm", "mcf", "libquantum", "milc"}
	jobs := make([]Job, n)
	for i := range jobs {
		cfg := sim.DefaultConfig(names[i%len(names)])
		cfg.WarmupInstructions = 20_000
		cfg.RunInstructions = 50_000
		cfg.Seed = uint64(i + 1)
		jobs[i] = Job{Label: fmt.Sprintf("bench%d", i), Config: cfg}
	}
	return jobs
}

// BenchmarkRun measures sweep wall clock against worker count. On a
// multi-core host the speedup is near-linear up to the core count,
// because jobs share no mutable state; compare the workers=1 and
// workers=N wall times (each iteration runs the same 16-job batch).
func BenchmarkRun(b *testing.B) {
	counts := []int{1, 2, 4, 8}
	max := runtime.GOMAXPROCS(0)
	if max > 8 {
		counts = append(counts, max)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			jobs := benchJobs(16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(context.Background(), jobs, Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
