package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// tinyConfig returns a fast simulation config differentiated by seed.
func tinyConfig(workload string, seed uint64) sim.Config {
	cfg := sim.DefaultConfig(workload)
	cfg.WarmupInstructions = 10_000
	cfg.RunInstructions = 20_000
	cfg.Seed = seed
	return cfg
}

func runSerial(t *testing.T, cfg sim.Config) sim.Result {
	t.Helper()
	res, err := runOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDeterministicAcrossWorkers runs the same fixed-seed configs twice
// serially and through the engine with 1, 4 and 8 workers, and demands
// bit-identical results (IPC vectors, mechanism stats, command counts —
// the whole Result) every time.
func TestDeterministicAcrossWorkers(t *testing.T) {
	cc := tinyConfig("lbm", 12345)
	cc.Mechanism = sim.ChargeCache
	configs := []sim.Config{
		tinyConfig("lbm", 12345),
		cc,
		tinyConfig("mcf", 7),
	}

	// Twice serially: the simulator itself must be deterministic.
	for i, cfg := range configs {
		first := runSerial(t, cfg)
		second := runSerial(t, cfg)
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("config %d: two serial runs differ", i)
		}
	}

	want := make([]sim.Result, len(configs))
	for i, cfg := range configs {
		want[i] = runSerial(t, cfg)
	}

	jobs := make([]Job, len(configs))
	for i, cfg := range configs {
		jobs[i] = Job{Label: fmt.Sprintf("job%d", i), Config: cfg}
	}
	for _, workers := range []int{1, 4, 8} {
		got, err := Run(context.Background(), jobs, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("workers=%d: result %d differs from serial run", workers, i)
			}
		}
	}
}

// TestResultsInInputOrder checks the order guarantee with distinct
// workloads: result i must belong to job i.
func TestResultsInInputOrder(t *testing.T) {
	names := []string{"lbm", "mcf", "libquantum", "sjeng", "milc", "soplex"}
	jobs := make([]Job, len(names))
	for i, n := range names {
		jobs[i] = Job{Label: n, Config: tinyConfig(n, uint64(i+1))}
	}
	results, err := Run(context.Background(), jobs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Config.Workloads[0] != names[i] {
			t.Errorf("result %d is %s, want %s", i, res.Config.Workloads[0], names[i])
		}
	}
}

// TestValidateFailureCancelsCleanly submits a batch whose middle config
// fails Validate: the sweep must stop early, report the failure with
// its label and position, and leave no goroutines behind.
func TestValidateFailureCancelsCleanly(t *testing.T) {
	before := runtime.NumGoroutine()

	bad := tinyConfig("lbm", 1)
	bad.Channels = 3 // not a power of two: rejected by Validate
	var jobs []Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, Job{Label: fmt.Sprintf("ok%d", i), Config: tinyConfig("lbm", uint64(i+1))})
	}
	jobs[3] = Job{Label: "bad-channels", Config: bad}

	_, err := Run(context.Background(), jobs, Options{Workers: 4})
	if err == nil {
		t.Fatal("invalid config did not fail the sweep")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("error %T is not a *JobError: %v", err, err)
	}
	if je.Index != 3 || je.Label != "bad-channels" {
		t.Errorf("error names job %d (%s), want 3 (bad-channels)", je.Index, je.Label)
	}
	checkNoGoroutineLeak(t, before)
}

// TestBuildFailureMidBatch exercises the error path for a config that
// passes Validate but fails during system construction (unknown DRAM
// standard), i.e. an error raised inside a worker mid-batch.
func TestBuildFailureMidBatch(t *testing.T) {
	before := runtime.NumGoroutine()

	bad := tinyConfig("lbm", 1)
	bad.Standard = "ddr9"
	jobs := []Job{
		{Label: "ok0", Config: tinyConfig("lbm", 2)},
		{Label: "bad-standard", Config: bad},
		{Label: "ok1", Config: tinyConfig("mcf", 3)},
	}
	_, err := Run(context.Background(), jobs, Options{Workers: 2})
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("error %T is not a *JobError: %v", err, err)
	}
	if je.Label != "bad-standard" {
		t.Errorf("error label = %q, want bad-standard", je.Label)
	}
	checkNoGoroutineLeak(t, before)
}

// TestContextCancellation checks a cancelled context stops the sweep
// and is reported.
func TestContextCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var jobs []Job
	for i := 0; i < 16; i++ {
		jobs = append(jobs, Job{Label: fmt.Sprintf("j%d", i), Config: tinyConfig("lbm", uint64(i+1))})
	}
	_, err := Run(ctx, jobs, Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestProgressEvents checks every job reports exactly once, with a
// consistent Done counter, and that callbacks are serialized.
func TestProgressEvents(t *testing.T) {
	var (
		mu     sync.Mutex
		events []Event
	)
	jobs := make([]Job, 5)
	for i := range jobs {
		jobs[i] = Job{Label: fmt.Sprintf("j%d", i), Config: tinyConfig("lbm", uint64(i+1))}
	}
	_, err := Run(context.Background(), jobs, Options{
		Workers: 3,
		Progress: func(ev Event) {
			mu.Lock()
			defer mu.Unlock()
			events = append(events, ev)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(jobs) {
		t.Fatalf("%d events, want %d", len(events), len(jobs))
	}
	seen := map[int]bool{}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != len(jobs) {
			t.Errorf("event %d: Done=%d Total=%d", i, ev.Done, ev.Total)
		}
		if seen[ev.Index] {
			t.Errorf("job %d reported twice", ev.Index)
		}
		seen[ev.Index] = true
		if ev.Err != nil || ev.Cached {
			t.Errorf("event %d: unexpected Err/Cached: %+v", i, ev)
		}
	}
}

// TestEmptySweep must be a no-op.
func TestEmptySweep(t *testing.T) {
	results, err := Run(context.Background(), nil, Options{Workers: 8})
	if err != nil || results != nil {
		t.Fatalf("empty sweep: results=%v err=%v", results, err)
	}
}

// checkNoGoroutineLeak waits for the goroutine count to settle back to
// the pre-sweep level (plus slack for runtime helpers).
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before sweep, %d after", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
