// Package version carries the build version stamped into binaries at
// link time. The Makefile injects it via
//
//	-ldflags "-X repro/internal/version.Version=$(git describe ...)"
//
// so every CLI's -version flag and the daemon's /healthz report which
// build is running; plain `go build` binaries report "dev".
package version

// Version is the stamped build identifier.
var Version = "dev"

// String returns the stamped version.
func String() string { return Version }
