package version

import "testing"

// TestDefaultVersion pins the unstamped default: plain `go build`
// binaries must report "dev" so a missing ldflags stamp is visible
// rather than silently empty.
func TestDefaultVersion(t *testing.T) {
	if Version != "dev" {
		t.Fatalf("unstamped Version = %q, want %q", Version, "dev")
	}
	if String() != Version {
		t.Fatalf("String() = %q, want %q", String(), Version)
	}
}

// TestStringTracksStamp checks String reflects a linker-style override
// (the Makefile writes the variable, not the function).
func TestStringTracksStamp(t *testing.T) {
	old := Version
	defer func() { Version = old }()
	Version = "v1.2.3-4-gabcdef0"
	if String() != "v1.2.3-4-gabcdef0" {
		t.Fatalf("String() = %q after stamping", String())
	}
}
