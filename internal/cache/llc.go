// Package cache implements the shared last-level cache of the evaluated
// system (Table 1: 4 MB, 16-way, 64 B lines, LRU) with miss-status
// holding registers (MSHRs) that coalesce misses to the same line and a
// writeback path for dirty evictions.
package cache

import (
	"fmt"

	"repro/internal/prof"
)

// Backend is the memory side of the cache (the memory controllers).
// Both methods report false when the request cannot be accepted this
// cycle (queue full); the caller must retry.
type Backend interface {
	// ReadLine requests a line fill; onDone runs when the line arrives.
	ReadLine(addr uint64, coreID int, onDone func()) bool
	// WriteLine sends a dirty line back to memory.
	WriteLine(addr uint64, coreID int) bool
}

// AccessResult classifies the outcome of an Access call.
type AccessResult uint8

const (
	// Hit means the line was present; the callback fires after the hit
	// latency.
	Hit AccessResult = iota
	// Miss means a fill was issued to memory.
	Miss
	// Coalesced means the access was merged into an in-flight miss.
	Coalesced
	// Retry means the cache could not accept the access this cycle
	// (MSHRs exhausted or memory queue full).
	Retry
)

// String implements fmt.Stringer.
func (r AccessResult) String() string {
	switch r {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Coalesced:
		return "coalesced"
	default:
		return "retry"
	}
}

// Config parameterizes the LLC.
type Config struct {
	SizeBytes  int // total capacity (Table 1: 4 MB)
	Ways       int // associativity (16)
	LineBytes  int // 64
	HitLatency int // CPU cycles from access to data for a hit
	MSHRs      int // distinct outstanding misses
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache: size/ways/line must be positive: %+v", c)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	if c.HitLatency < 1 || c.MSHRs < 1 {
		return fmt.Errorf("cache: hit latency and MSHRs must be >= 1")
	}
	return nil
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Coalesced  uint64
	Retries    uint64
	WriteHits  uint64
	WriteFills uint64
	Evictions  uint64
	Writebacks uint64
}

// MPKIDenominator is exported for completeness; MPKI itself is computed
// by the simulator, which knows the instruction counts.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses + s.Coalesced }

// mshrSlot tracks one in-flight line fill. Slots are allocated once
// (Config.MSHRs of them) and recycled, so the miss path allocates at
// most a waiter append; fill is the slot's preallocated completion
// callback handed to the backend.
type mshrSlot struct {
	line        uint64
	idx         int32
	used        bool
	dirtyOnFill bool
	waiters     []func()
	fill        func()
}

// pendingHit is a scheduled hit-latency callback.
type pendingHit struct {
	at int64
	fn func()
}

// LLC is the shared last-level cache. It is driven in CPU-clock cycles
// by a single goroutine (not safe for concurrent use).
type LLC struct {
	cfg  Config
	sets int

	tags  []uint64
	valid []bool
	dirty []bool
	used  []uint64
	tick  uint64

	mshrs []mshrSlot
	// mshrLive lists the indexes of in-use slots, so lookups scan only
	// the live misses (a line appears in at most one slot, so the list
	// order is irrelevant to lookup results).
	mshrLive []int32

	backend Backend

	// hitQueue holds scheduled hit completions ordered by time (hits
	// complete in FIFO order since latency is constant). hitHead is the
	// ring head: delivered entries advance it instead of reslicing, so
	// the buffer is reused once drained.
	hitQueue []pendingHit
	hitHead  int

	// wbBacklog holds dirty-eviction writebacks the backend has not yet
	// accepted, retried every Tick (wbHead as above).
	wbBacklog []uint64
	wbHead    int

	stats         Stats
	wbBacklogPeak int
	now           int64

	// stamp increments on every Access and Tick — the only operations
	// that can move NextEvent. The event engine uses it to reuse its
	// memory-event horizon across executed cycles without memory
	// activity.
	stamp uint64

	// profiler, if set, attributes sampled wall-clock time to Access
	// (see SetProfiler); profDiv converts the LLC's CPU clock to the
	// profiler's bus-cycle domain.
	profiler *prof.Timer
	profDiv  int64
}

// SetProfiler installs the sampled phase timer on Access (nil removes
// it). clockDiv is the CPU-to-bus clock ratio: the LLC runs on the CPU
// clock, while the profiler buckets samples by bus cycle.
func (c *LLC) SetProfiler(t *prof.Timer, clockDiv int) {
	c.profiler = t
	c.profDiv = int64(clockDiv)
	if c.profDiv < 1 {
		c.profDiv = 1
	}
}

// New builds an LLC; cfg must validate and backend must be non-nil.
func New(cfg Config, backend Backend) (*LLC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if backend == nil {
		return nil, fmt.Errorf("cache: backend must be non-nil")
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	c := &LLC{
		cfg:     cfg,
		sets:    lines / cfg.Ways,
		tags:    make([]uint64, lines),
		valid:   make([]bool, lines),
		dirty:   make([]bool, lines),
		used:    make([]uint64, lines),
		mshrs:   make([]mshrSlot, cfg.MSHRs),
		backend: backend,
	}
	c.mshrLive = make([]int32, 0, cfg.MSHRs)
	for i := range c.mshrs {
		slot := &c.mshrs[i]
		slot.idx = int32(i)
		slot.fill = func() { c.fillSlot(slot) }
	}
	return c, nil
}

// Config returns the cache configuration.
func (c *LLC) Config() Config { return c.cfg }

// Stats returns the counters.
func (c *LLC) Stats() Stats { return c.stats }

// ResetStats clears counters without touching contents.
func (c *LLC) ResetStats() { c.stats = Stats{} }

// MSHRsInUse returns the number of in-flight distinct misses.
func (c *LLC) MSHRsInUse() int { return len(c.mshrLive) }

// findMSHR returns the in-flight slot for line, or nil.
func (c *LLC) findMSHR(line uint64) *mshrSlot {
	for _, i := range c.mshrLive {
		if c.mshrs[i].line == line {
			return &c.mshrs[i]
		}
	}
	return nil
}

// Pending reports whether fills, scheduled hits or writebacks are
// outstanding.
func (c *LLC) Pending() bool {
	return len(c.mshrLive) > 0 || len(c.hitQueue) > c.hitHead || len(c.wbBacklog) > c.wbHead
}

// NoEvent is NextEvent's "nothing scheduled" sentinel.
const NoEvent = int64(1) << 62

// NextEvent returns the next CPU cycle at which a Tick can change
// state: the earliest scheduled hit delivery (the hit queue is FIFO —
// latency is constant, so the head is the minimum), or the very next
// cycle while backlogged writebacks need retrying against the memory
// controller. In-flight misses need no wake-up of their own: their
// fills arrive through controller completions, which the controllers'
// own event estimates cover.
func (c *LLC) NextEvent() int64 {
	if len(c.wbBacklog) > c.wbHead {
		return c.now + 1
	}
	if len(c.hitQueue) > c.hitHead {
		return c.hitQueue[c.hitHead].at
	}
	return NoEvent
}

func (c *LLC) lineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.LineBytes-1)
}

func (c *LLC) setOf(line uint64) int {
	idx := line / uint64(c.cfg.LineBytes)
	// Mix upper bits so strided patterns spread over sets.
	idx ^= idx >> 17
	return int(idx & uint64(c.sets-1))
}

// findLine returns the line index within the set, or -1.
func (c *LLC) findLine(line uint64) int {
	base := c.setOf(line) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			return i
		}
	}
	return -1
}

// Access performs a read (isWrite false) or a writeback from the upper
// levels (isWrite true) at CPU cycle now. For reads, onDone fires when
// data is available. Writes complete immediately from the core's
// perspective (no callback).
func (c *LLC) Access(now int64, addr uint64, isWrite bool, coreID int, onDone func()) AccessResult {
	if c.profiler != nil {
		pt := c.profiler.Begin(prof.LLCLookup)
		defer c.profiler.End(prof.LLCLookup, pt, now/c.profDiv)
	}
	c.now = now
	c.stamp++
	line := c.lineAddr(addr)
	if isWrite {
		return c.write(line, coreID)
	}
	return c.read(now, line, coreID, onDone)
}

func (c *LLC) read(now int64, line uint64, coreID int, onDone func()) AccessResult {
	if i := c.findLine(line); i >= 0 {
		c.touch(i)
		c.stats.Hits++
		c.hitQueue = append(c.hitQueue, pendingHit{at: now + int64(c.cfg.HitLatency), fn: onDone})
		return Hit
	}
	if s := c.findMSHR(line); s != nil {
		s.waiters = append(s.waiters, onDone)
		c.stats.Coalesced++
		return Coalesced
	}
	if len(c.mshrLive) >= c.cfg.MSHRs {
		c.stats.Retries++
		return Retry
	}
	var idx int32 = -1
	for i := range c.mshrs {
		if !c.mshrs[i].used {
			idx = int32(i)
			break
		}
	}
	slot := &c.mshrs[idx]
	slot.line = line
	slot.dirtyOnFill = false
	slot.waiters = append(slot.waiters[:0], onDone)
	if !c.backend.ReadLine(line, coreID, slot.fill) {
		c.stats.Retries++
		return Retry
	}
	slot.used = true
	c.mshrLive = append(c.mshrLive, idx)
	c.stats.Misses++
	return Miss
}

// write models an upper-level dirty line arriving: write-allocate without
// a fill read (the full line is being written).
func (c *LLC) write(line uint64, coreID int) AccessResult {
	if i := c.findLine(line); i >= 0 {
		c.touch(i)
		c.dirty[i] = true
		c.stats.WriteHits++
		return Hit
	}
	if s := c.findMSHR(line); s != nil {
		s.dirtyOnFill = true
		c.stats.Coalesced++
		return Coalesced
	}
	c.install(line, true)
	c.stats.WriteFills++
	return Miss
}

// fillSlot completes an in-flight miss: installs the line and wakes
// waiters. The slot is recycled for the next miss.
func (c *LLC) fillSlot(s *mshrSlot) {
	if !s.used {
		return
	}
	s.used = false
	for i, live := range c.mshrLive {
		if live == s.idx {
			last := len(c.mshrLive) - 1
			c.mshrLive[i] = c.mshrLive[last]
			c.mshrLive = c.mshrLive[:last]
			break
		}
	}
	c.install(s.line, s.dirtyOnFill)
	for i, w := range s.waiters {
		if w != nil {
			w()
		}
		s.waiters[i] = nil
	}
	s.waiters = s.waiters[:0]
}

// install places line in its set, evicting the LRU victim if needed.
func (c *LLC) install(line uint64, dirty bool) {
	base := c.setOf(line) * c.cfg.Ways
	victim := base
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			// Already present (e.g. write raced a fill): just update.
			c.touch(i)
			c.dirty[i] = c.dirty[i] || dirty
			return
		}
		if !c.valid[i] {
			victim = i
			continue
		}
		if c.valid[victim] && c.used[i] < c.used[victim] {
			victim = i
		}
	}
	if c.valid[victim] {
		c.stats.Evictions++
		if c.dirty[victim] {
			c.enqueueWriteback(c.tags[victim])
		}
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.dirty[victim] = dirty
	c.touch(victim)
}

func (c *LLC) touch(i int) {
	c.tick++
	c.used[i] = c.tick
}

func (c *LLC) enqueueWriteback(line uint64) {
	// Writebacks can originate from a fill completing inside a
	// controller tick (no Access/Tick of our own), and a rejected one
	// schedules a next-cycle retry: stamp so cached horizons notice.
	c.stamp++
	c.stats.Writebacks++
	if c.backend.WriteLine(line, -1) {
		return
	}
	c.wbBacklog = append(c.wbBacklog, line)
	if len(c.wbBacklog)-c.wbHead > c.wbBacklogPeak {
		c.wbBacklogPeak = len(c.wbBacklog) - c.wbHead
	}
}

// Stamp returns a counter that changes whenever NextEvent may have
// moved (any Access or Tick).
func (c *LLC) Stamp() uint64 { return c.stamp }

// Tick delivers due hit callbacks and retries backlogged writebacks.
func (c *LLC) Tick(now int64) {
	c.now = now
	c.stamp++
	for c.hitHead < len(c.hitQueue) && c.hitQueue[c.hitHead].at <= now {
		h := c.hitQueue[c.hitHead]
		c.hitQueue[c.hitHead].fn = nil
		c.hitHead++
		if h.fn != nil {
			h.fn()
		}
	}
	if c.hitHead == len(c.hitQueue) {
		c.hitQueue = c.hitQueue[:0]
		c.hitHead = 0
	}
	for c.wbHead < len(c.wbBacklog) {
		if !c.backend.WriteLine(c.wbBacklog[c.wbHead], -1) {
			break
		}
		c.wbHead++
	}
	if c.wbHead == len(c.wbBacklog) {
		c.wbBacklog = c.wbBacklog[:0]
		c.wbHead = 0
	}
}

// WritebackBacklogPeak reports the deepest the writeback backlog got
// (diagnostic; large values indicate an undersized write queue).
func (c *LLC) WritebackBacklogPeak() int { return c.wbBacklogPeak }

// Contents returns the number of valid lines (test helper).
func (c *LLC) Contents() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}

// DirtyLines returns the number of dirty lines (test helper).
func (c *LLC) DirtyLines() int {
	n := 0
	for i, v := range c.valid {
		if v && c.dirty[i] {
			n++
		}
	}
	return n
}
