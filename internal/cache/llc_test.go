package cache

import (
	"testing"
	"testing/quick"
)

// fakeBackend records requests and completes fills on demand.
type fakeBackend struct {
	reads       []uint64
	writes      []uint64
	fills       map[uint64]func()
	rejectRead  bool
	rejectWrite bool
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{fills: map[uint64]func(){}}
}

func (b *fakeBackend) ReadLine(addr uint64, coreID int, onDone func()) bool {
	if b.rejectRead {
		return false
	}
	b.reads = append(b.reads, addr)
	b.fills[addr] = onDone
	return true
}

func (b *fakeBackend) WriteLine(addr uint64, coreID int) bool {
	if b.rejectWrite {
		return false
	}
	b.writes = append(b.writes, addr)
	return true
}

func (b *fakeBackend) complete(addr uint64) {
	if fn, ok := b.fills[addr]; ok {
		delete(b.fills, addr)
		fn()
	}
}

func testConfig() Config {
	return Config{
		SizeBytes:  64 * 1024, // small for tests
		Ways:       16,
		LineBytes:  64,
		HitLatency: 26,
		MSHRs:      8,
	}
}

func mustLLC(t *testing.T, cfg Config, b Backend) *LLC {
	t.Helper()
	c, err := New(cfg, b)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	bad := testConfig()
	bad.SizeBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero size")
	}
	bad = testConfig()
	bad.Ways = 7 // 1024 lines not divisible by 7
	if err := bad.Validate(); err == nil {
		t.Error("accepted indivisible ways")
	}
	bad = testConfig()
	bad.MSHRs = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero MSHRs")
	}
	if _, err := New(testConfig(), nil); err == nil {
		t.Error("accepted nil backend")
	}
	// Table 1 LLC: 4MB, 16-way, 64B.
	big := Config{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64, HitLatency: 26, MSHRs: 32}
	if err := big.Validate(); err != nil {
		t.Errorf("Table 1 LLC config rejected: %v", err)
	}
}

func TestMissFillHit(t *testing.T) {
	b := newFakeBackend()
	c := mustLLC(t, testConfig(), b)
	fired := false
	res := c.Access(0, 0x1000, false, 0, func() { fired = true })
	if res != Miss {
		t.Fatalf("first access = %v, want miss", res)
	}
	if len(b.reads) != 1 || b.reads[0] != 0x1000 {
		t.Fatalf("backend reads = %v", b.reads)
	}
	b.complete(0x1000)
	if !fired {
		t.Error("fill did not wake the waiter")
	}
	// Second access: hit, callback after HitLatency.
	hitFired := false
	res = c.Access(100, 0x1000, false, 0, func() { hitFired = true })
	if res != Hit {
		t.Fatalf("second access = %v, want hit", res)
	}
	c.Tick(100 + int64(c.Config().HitLatency) - 1)
	if hitFired {
		t.Error("hit completed before hit latency")
	}
	c.Tick(100 + int64(c.Config().HitLatency))
	if !hitFired {
		t.Error("hit not completed at hit latency")
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSameLineDifferentOffsetHits(t *testing.T) {
	b := newFakeBackend()
	c := mustLLC(t, testConfig(), b)
	c.Access(0, 0x1000, false, 0, func() {})
	b.complete(0x1000)
	if res := c.Access(1, 0x1038, false, 0, func() {}); res != Hit {
		t.Errorf("access within same line = %v, want hit", res)
	}
}

func TestMSHRCoalescing(t *testing.T) {
	b := newFakeBackend()
	c := mustLLC(t, testConfig(), b)
	n := 0
	c.Access(0, 0x2000, false, 0, func() { n++ })
	res := c.Access(1, 0x2000, false, 1, func() { n++ })
	if res != Coalesced {
		t.Fatalf("second miss = %v, want coalesced", res)
	}
	if len(b.reads) != 1 {
		t.Fatalf("backend saw %d reads, want 1", len(b.reads))
	}
	b.complete(0x2000)
	if n != 2 {
		t.Errorf("waiters woken = %d, want 2", n)
	}
	if c.Stats().Coalesced != 1 {
		t.Errorf("coalesced = %d", c.Stats().Coalesced)
	}
}

func TestMSHRExhaustionRetries(t *testing.T) {
	cfg := testConfig()
	cfg.MSHRs = 2
	b := newFakeBackend()
	c := mustLLC(t, cfg, b)
	c.Access(0, 0x1000, false, 0, func() {})
	c.Access(0, 0x2000, false, 0, func() {})
	if res := c.Access(0, 0x3000, false, 0, func() {}); res != Retry {
		t.Errorf("access with full MSHRs = %v, want retry", res)
	}
	if c.MSHRsInUse() != 2 {
		t.Errorf("MSHRsInUse = %d", c.MSHRsInUse())
	}
	b.complete(0x1000)
	if res := c.Access(1, 0x3000, false, 0, func() {}); res != Miss {
		t.Errorf("after fill = %v, want miss", res)
	}
}

func TestBackendRejectionRetries(t *testing.T) {
	b := newFakeBackend()
	b.rejectRead = true
	c := mustLLC(t, testConfig(), b)
	if res := c.Access(0, 0x1000, false, 0, func() {}); res != Retry {
		t.Errorf("rejected read = %v, want retry", res)
	}
	if c.MSHRsInUse() != 0 {
		t.Error("MSHR leaked on rejected read")
	}
}

func TestWriteAllocateAndDirtyEviction(t *testing.T) {
	cfg := testConfig()
	cfg.SizeBytes = 2 * 64 * 16 // 2 sets x 16 ways
	b := newFakeBackend()
	c := mustLLC(t, cfg, b)
	// Write-allocate a line: no backend traffic yet.
	if res := c.Access(0, 0x0, true, 0, nil); res != Miss {
		t.Errorf("write fill = %v", res)
	}
	if len(b.writes) != 0 {
		t.Error("premature writeback")
	}
	if c.DirtyLines() != 1 {
		t.Errorf("dirty lines = %d", c.DirtyLines())
	}
	// Re-write: hit.
	if res := c.Access(1, 0x0, true, 0, nil); res != Hit {
		t.Errorf("write hit = %v", res)
	}
	// Fill the whole cache with reads until the dirty line is evicted.
	addr := uint64(0x10000)
	for i := 0; c.DirtyLines() > 0 && i < 4096; i++ {
		c.Access(2, addr, false, 0, func() {})
		b.complete(c.lineAddr(addr))
		addr += 64
	}
	if len(b.writes) == 0 {
		t.Fatal("dirty eviction never wrote back")
	}
	if b.writes[0] != 0 {
		t.Errorf("writeback addr = %#x, want 0", b.writes[0])
	}
	if c.Stats().Writebacks == 0 || c.Stats().Evictions == 0 {
		t.Errorf("stats = %+v", c.Stats())
	}
}

func TestWritebackBacklogRetried(t *testing.T) {
	cfg := testConfig()
	cfg.SizeBytes = 64 * 16 // one set
	b := newFakeBackend()
	c := mustLLC(t, cfg, b)
	b.rejectWrite = true
	// Dirty the whole set, then overflow it to force an eviction.
	for i := 0; i < 17; i++ {
		c.Access(0, uint64(i)*64*1024, true, 0, nil) // distinct tags, same set? ensure same set below
	}
	// At least one eviction happened; its writeback is backlogged.
	if c.Stats().Evictions == 0 {
		t.Skip("eviction pattern did not collide in one set")
	}
	if len(b.writes) != 0 {
		t.Fatal("write accepted while rejecting")
	}
	if c.WritebackBacklogPeak() == 0 {
		t.Fatal("no backlog recorded")
	}
	b.rejectWrite = false
	c.Tick(10)
	if len(b.writes) == 0 {
		t.Error("backlogged writeback not retried")
	}
	if c.Pending() {
		t.Error("cache still pending after backlog drain")
	}
}

func TestWriteToPendingMissMarksDirtyOnFill(t *testing.T) {
	b := newFakeBackend()
	c := mustLLC(t, testConfig(), b)
	c.Access(0, 0x4000, false, 0, func() {})
	if res := c.Access(1, 0x4000, true, 0, nil); res != Coalesced {
		t.Errorf("write to pending line = %v, want coalesced", res)
	}
	b.complete(0x4000)
	if c.DirtyLines() != 1 {
		t.Error("line not dirty after coalesced write + fill")
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := testConfig()
	cfg.SizeBytes = 64 * 16 // one set of 16 ways
	cfg.Ways = 16
	b := newFakeBackend()
	c := mustLLC(t, cfg, b)
	line := func(i int) uint64 { return uint64(i) * 64 * 16 } // same set
	// Fill 16 ways.
	for i := 0; i < 16; i++ {
		c.Access(int64(i), line(i), false, 0, func() {})
		b.complete(line(i))
	}
	// Touch line 0 so line 1 is LRU.
	c.Access(100, line(0), false, 0, func() {})
	// Install a 17th line.
	c.Access(101, line(16), false, 0, func() {})
	b.complete(line(16))
	if res := c.Access(102, line(0), false, 0, func() {}); res != Hit {
		t.Error("MRU line evicted")
	}
	if res := c.Access(103, line(1), false, 0, func() {}); res == Hit {
		t.Error("LRU line survived")
	}
}

func TestContentsCount(t *testing.T) {
	b := newFakeBackend()
	c := mustLLC(t, testConfig(), b)
	for i := 0; i < 10; i++ {
		addr := uint64(i) * 64
		c.Access(0, addr, false, 0, func() {})
		b.complete(addr)
	}
	if c.Contents() != 10 {
		t.Errorf("Contents = %d, want 10", c.Contents())
	}
	c.ResetStats()
	if c.Stats().Misses != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestAccessResultString(t *testing.T) {
	if Hit.String() != "hit" || Miss.String() != "miss" ||
		Coalesced.String() != "coalesced" || Retry.String() != "retry" {
		t.Error("AccessResult.String misbehaves")
	}
}

// Property: the number of valid lines never exceeds capacity, for any
// access pattern.
func TestCapacityNeverExceeded(t *testing.T) {
	cfg := testConfig()
	cfg.SizeBytes = 4 * 1024 // 64 lines
	b := newFakeBackend()
	c := mustLLC(t, cfg, b)
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			line := c.lineAddr(uint64(a))
			if c.Access(0, uint64(a), a%3 == 0, 0, func() {}) == Miss && a%3 != 0 {
				b.complete(line)
			}
		}
		return c.Contents() <= cfg.SizeBytes/cfg.LineBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
