package workload

import (
	"testing"
	"testing/quick"
)

func TestAllProfilesValidate(t *testing.T) {
	ps := Profiles()
	if len(ps) != 22 {
		t.Fatalf("profiles = %d, want the paper's 22 workloads", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestProfileValidateRejectsBad(t *testing.T) {
	cases := []Profile{
		{},
		{Name: "x", FootprintMB: 0},
		{Name: "x", FootprintMB: 1, Pattern: MultiStream, Streams: 1},
		{Name: "x", FootprintMB: 1, Pattern: ZipfRow, ZipfS: 0},
		{Name: "x", FootprintMB: 1, Pattern: ZipfRow, ZipfS: 2.5},
		{Name: "x", FootprintMB: 1, JumpProb: 1.5},
		{Name: "x", FootprintMB: 1, WritebackFrac: -0.1},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v) accepted", i, p)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("mcf")
	if err != nil || p.Name != "mcf" {
		t.Errorf("ByName(mcf) = %+v, %v", p, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown name accepted")
	}
	if len(Names()) != 22 {
		t.Error("Names() wrong length")
	}
}

func TestEightCoreMixesDeterministic(t *testing.T) {
	a := EightCoreMixes(7, 20)
	b := EightCoreMixes(7, 20)
	if len(a) != 20 {
		t.Fatalf("mixes = %d", len(a))
	}
	for i := range a {
		if len(a[i]) != 8 {
			t.Fatalf("mix %d has %d members", i, len(a[i]))
		}
		for c := range a[i] {
			if a[i][c] != b[i][c] {
				t.Fatal("mixes not deterministic")
			}
			if _, err := ByName(a[i][c]); err != nil {
				t.Fatalf("mix contains unknown workload %q", a[i][c])
			}
		}
	}
	// Different seed: (almost surely) different mixes.
	c := EightCoreMixes(8, 20)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical mixes")
	}
}

func mustGen(t *testing.T, name string, seed uint64) *Generator {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(p, seed, 0, 4<<30)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, name := range Names() {
		g1 := mustGen(t, name, 42)
		g2 := mustGen(t, name, 42)
		for i := 0; i < 1000; i++ {
			r1, r2 := g1.Next(), g2.Next()
			if r1 != r2 {
				t.Fatalf("%s: records diverge at %d: %+v vs %+v", name, i, r1, r2)
			}
		}
	}
}

func TestGeneratorAddressesWithinRegion(t *testing.T) {
	base := uint64(1) << 32
	region := uint64(1) << 30
	for _, name := range Names() {
		p, _ := ByName(name)
		g, err := NewGenerator(p, 1, base, region)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < 5000; i++ {
			r := g.Next()
			if r.Addr < base || r.Addr >= base+region {
				t.Fatalf("%s: addr %#x outside [%#x,%#x)", name, r.Addr, base, base+region)
			}
			if r.HasWriteback && (r.WBAddr < base || r.WBAddr >= base+region) {
				t.Fatalf("%s: wb addr %#x outside region", name, r.WBAddr)
			}
			if r.Bubbles < 0 {
				t.Fatalf("%s: negative bubbles", name)
			}
		}
	}
}

func TestGeneratorRejectsBadInput(t *testing.T) {
	p, _ := ByName("mcf")
	if _, err := NewGenerator(p, 1, 0, 100); err == nil {
		t.Error("tiny region accepted")
	}
	bad := p
	bad.FootprintMB = 0
	if _, err := NewGenerator(bad, 1, 0, 1<<30); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestStreamIsSequential(t *testing.T) {
	g := mustGen(t, "hmmer", 1)
	prev := g.Next().Addr
	for i := 0; i < 100; i++ {
		cur := g.Next().Addr
		if cur != prev+lineBytes && cur != g.base {
			t.Fatalf("stream jumped from %#x to %#x", prev, cur)
		}
		prev = cur
	}
}

func TestFootprintCappedByRegion(t *testing.T) {
	p, _ := ByName("mcf") // 1700 MB profile
	g, err := NewGenerator(p, 1, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if g.Footprint() != 1<<30 {
		t.Errorf("footprint = %d, want capped at 1GiB", g.Footprint())
	}
	if g.Profile().Name != "mcf" {
		t.Error("Profile() wrong")
	}
}

func TestBubbleMeansDifferentiateIntensity(t *testing.T) {
	mean := func(name string) float64 {
		g := mustGen(t, name, 9)
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(g.Next().Bubbles)
		}
		return sum / n
	}
	light := mean("tpch6")      // 500 bubbles: memory-light
	heavy := mean("STREAMcopy") // 18 bubbles: memory-heavy
	if light < 5*heavy {
		t.Errorf("intensity not separated: light=%.0f heavy=%.0f", light, heavy)
	}
}

func TestZipfConcentratesAccesses(t *testing.T) {
	g := mustGen(t, "apache20", 3)
	counts := map[uint64]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[g.Next().Addr/segmentSize]++
	}
	// The hottest segment must take a disproportionate share vs uniform.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := n / len(counts)
	if max < 5*uniform {
		t.Errorf("zipf hot segment %d accesses vs uniform %d: not skewed", max, uniform)
	}
}

func TestRandomSpreads(t *testing.T) {
	g := mustGen(t, "sjeng", 4)
	counts := map[uint64]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[g.Next().Addr/segmentSize]++
	}
	if len(counts) < 1000 {
		t.Errorf("random touched only %d segments", len(counts))
	}
}

func TestRNGProperties(t *testing.T) {
	r := newRNG(0) // zero seed must still work
	f := func(_ int) bool {
		v := r.float64()
		return v > 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	r2 := newRNG(5)
	for i := 0; i < 1000; i++ {
		if n := r2.intn(7); n < 0 || n >= 7 {
			t.Fatalf("intn out of range: %d", n)
		}
		if e := r2.exp(100); e < 0 || e > 1000 {
			t.Fatalf("exp out of range: %g", e)
		}
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{
		Stream: "stream", MultiStream: "multistream", Random: "random",
		ZipfRow: "zipf-row", StrideMix: "stride-mix", Pattern(99): "Pattern(99)",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}
