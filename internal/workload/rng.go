package workload

import "math"

// rng is a splitmix64-seeded xorshift generator: tiny, fast and
// deterministic across platforms (unlike math/rand it has an explicitly
// specified algorithm, so traces are reproducible byte-for-byte).
type rng struct {
	state uint64
}

func newRNG(seed uint64) *rng {
	// Run the seed through splitmix64 so small seeds are well spread.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return &rng{state: z}
}

func (r *rng) next() uint64 {
	x := r.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.state = x
	return x
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// float64 returns a value in (0, 1].
func (r *rng) float64() float64 {
	return float64(r.next()>>11+1) / float64(1<<53)
}

// exp returns an exponentially distributed value with the given mean,
// capped at 10x the mean to bound record sizes.
func (r *rng) exp(mean float64) float64 {
	v := -mean * math.Log(r.float64())
	if v > 10*mean {
		v = 10 * mean
	}
	return v
}
