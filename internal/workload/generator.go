package workload

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/cpu"
)

const (
	lineBytes   = 64
	segmentSize = 8 * 1024 // one DRAM row buffer
)

// Generator produces an endless trace for one workload. It implements
// cpu.TraceReader. Not safe for concurrent use.
type Generator struct {
	prof Profile
	rng  *rng

	base      uint64 // start of this core's address region
	footprint uint64 // bytes actually touched (<= region size)

	// Stream state: one cursor per stream, served round-robin.
	cursors []uint64
	rr      int

	// Zipf state: cumulative popularity over segments, and a permutation
	// multiplier mapping popularity rank to segment index.
	zipfCum []float64

	// Writeback trail: writebacks target a line a fixed distance behind
	// the current access, modeling dirty lines displaced from the upper
	// caches.
	lastAddrs [8]uint64
	lastIdx   int
}

// zipfSegmentsCap bounds the Zipf table size; footprints larger than
// cap*8KB reuse the table over interleaved segment groups.
const zipfSegmentsCap = 1 << 15

// NewGenerator builds a generator for prof, touching [base,
// base+regionBytes). seed makes the stream deterministic.
func NewGenerator(prof Profile, seed uint64, base, regionBytes uint64) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if regionBytes < segmentSize {
		return nil, fmt.Errorf("workload: region %d too small", regionBytes)
	}
	fp := uint64(prof.FootprintMB) << 20
	if fp > regionBytes {
		fp = regionBytes
	}
	g := &Generator{
		prof:      prof,
		rng:       newRNG(seed),
		base:      base,
		footprint: fp,
	}
	switch prof.Pattern {
	case Stream:
		g.cursors = []uint64{0}
	case MultiStream:
		g.cursors = make([]uint64, prof.Streams)
		for i := range g.cursors {
			// Spread the streams across the footprint.
			g.cursors[i] = uint64(i) * (fp / uint64(prof.Streams))
		}
	case StrideMix:
		g.cursors = []uint64{0, fp / 2}
	case ZipfRow:
		segs := int(fp / segmentSize)
		if segs > zipfSegmentsCap {
			segs = zipfSegmentsCap
		}
		if segs < 1 {
			segs = 1
		}
		g.zipfCum = zipfTable(segs, prof.ZipfS)
	}
	return g, nil
}

// zipfTableCache shares the cumulative-popularity tables across
// generators: the table is a pure function of (segments, exponent), its
// construction costs tens of thousands of math.Pow calls, and campaigns
// build hundreds of generators with identical parameters. Cached tables
// are read-only (nextOffset only binary-searches them), so sharing
// across concurrently running simulations is safe.
var zipfTableCache sync.Map // zipfKey -> []float64

type zipfKey struct {
	segs int
	s    float64
}

func zipfTable(segs int, s float64) []float64 {
	key := zipfKey{segs: segs, s: s}
	if t, ok := zipfTableCache.Load(key); ok {
		return t.([]float64)
	}
	cum := make([]float64, segs)
	sum := 0.0
	for i := 0; i < segs; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cum[i] = sum
	}
	t, _ := zipfTableCache.LoadOrStore(key, cum)
	return t.([]float64)
}

// Profile returns the generator's workload profile.
func (g *Generator) Profile() Profile { return g.prof }

// Footprint returns the touched bytes.
func (g *Generator) Footprint() uint64 { return g.footprint }

// Next implements cpu.TraceReader.
func (g *Generator) Next() cpu.TraceRecord {
	rec := cpu.TraceRecord{
		Bubbles: int(g.rng.exp(float64(g.prof.Bubbles))),
		Addr:    g.base + g.nextOffset(),
	}
	if g.prof.WritebackFrac > 0 && g.rng.float64() < g.prof.WritebackFrac {
		// Write back a line we touched a few accesses ago.
		idx := (g.lastIdx + 1) % len(g.lastAddrs)
		if g.lastAddrs[idx] != 0 {
			rec.HasWriteback = true
			rec.WBAddr = g.lastAddrs[idx]
		}
	}
	g.lastAddrs[g.lastIdx] = rec.Addr
	g.lastIdx = (g.lastIdx + 1) % len(g.lastAddrs)
	return rec
}

// nextOffset produces the next line-aligned offset within the footprint.
func (g *Generator) nextOffset() uint64 {
	switch g.prof.Pattern {
	case Stream:
		off := g.cursors[0]
		g.cursors[0] = (off + lineBytes) % g.footprint
		return off

	case MultiStream:
		// Strict round-robin across streams (an unrolled a[i]/b[i]/c[i]
		// loop body), each advancing sequentially.
		s := g.rr
		g.rr++
		if g.rr == len(g.cursors) {
			g.rr = 0
		}
		off := g.cursors[s]
		g.cursors[s] = (off + lineBytes) % g.footprint
		return off

	case Random:
		lines := g.footprint / lineBytes
		return (g.rng.next() % lines) * lineBytes

	case ZipfRow:
		seg := g.zipfSegment()
		// Spread popularity ranks over the address space so hot
		// segments land in different banks/rows.
		segs := uint64(len(g.zipfCum))
		spread := (uint64(seg)*0x9e3779b97f4a7c15 + 0x7f4a7c15) % segs
		inSeg := (g.rng.next() % (segmentSize / lineBytes)) * lineBytes
		return (spread*segmentSize + inSeg) % g.footprint

	case StrideMix:
		// Two interleaved strided walks over separate structures, with
		// probabilistic local jumps (revisiting nearby data) and rare
		// long jumps. The interleave produces the bank conflicts that
		// strided scientific/integer codes exhibit; jumps temper the
		// pure-stream row locality.
		s := g.rr
		g.rr ^= 1
		switch u := g.rng.float64(); {
		case u < g.prof.JumpProb:
			window := uint64(1 << 20)
			if window > g.footprint {
				window = g.footprint
			}
			delta := (g.rng.next() % (window / lineBytes)) * lineBytes
			g.cursors[s] = (g.cursors[s] + delta) % g.footprint
		case u < g.prof.JumpProb+0.02:
			g.cursors[s] = (g.rng.next() % (g.footprint / lineBytes)) * lineBytes
		default:
			g.cursors[s] = (g.cursors[s] + lineBytes) % g.footprint
		}
		return g.cursors[s]

	default:
		return 0
	}
}

// zipfSegment samples a popularity rank from the Zipf distribution.
func (g *Generator) zipfSegment() int {
	total := g.zipfCum[len(g.zipfCum)-1]
	u := g.rng.float64() * total
	return sort.SearchFloat64s(g.zipfCum, u)
}
