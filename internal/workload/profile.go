// Package workload provides deterministic synthetic trace generators
// that stand in for the paper's Pin-collected SPEC CPU2006, TPC and
// STREAM traces (see DESIGN.md §1 for the substitution argument).
//
// Each named workload is a Profile: a memory intensity (mean non-memory
// instructions per memory access), a footprint, an access pattern, and a
// writeback ratio. The patterns are chosen to reproduce the properties
// ChargeCache's benefit depends on — row-activation intensity (RMPKC)
// and row-level temporal locality (RLTL) — rather than instruction
// semantics:
//
//   - Stream: one sequential stream (libquantum-style vector sweeps).
//   - MultiStream: several interleaved sequential streams whose rows
//     collide in banks (STREAM copy, lbm, bwaves ... ). Interleaved
//     streams are the canonical source of single-core bank conflicts and
//     hence of high RLTL.
//   - Random: uniform pointer chasing over the whole footprint (sjeng).
//   - ZipfRow: row-granular hot-set reuse with a Zipf popularity
//     distribution (databases, mcf's hot structures).
//   - StrideMix: strided sweeps with local jumps (astar, sphinx3 ... ).
package workload

import (
	"fmt"
	"sort"
)

// Pattern enumerates the address-stream shapes.
type Pattern uint8

const (
	// Stream is a single sequential stream.
	Stream Pattern = iota
	// MultiStream interleaves several sequential streams.
	MultiStream
	// Random is a uniform random walk over the footprint.
	Random
	// ZipfRow picks row-sized segments with Zipf popularity.
	ZipfRow
	// StrideMix strides sequentially with probabilistic local jumps.
	StrideMix
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Stream:
		return "stream"
	case MultiStream:
		return "multistream"
	case Random:
		return "random"
	case ZipfRow:
		return "zipf-row"
	case StrideMix:
		return "stride-mix"
	default:
		return fmt.Sprintf("Pattern(%d)", uint8(p))
	}
}

// Profile describes one synthetic workload.
type Profile struct {
	Name    string
	Pattern Pattern

	// Bubbles is the mean number of non-memory instructions between
	// memory accesses (exponentially distributed). Lower means more
	// memory-intensive.
	Bubbles int

	// FootprintMB is the touched memory size.
	FootprintMB int

	// Streams is the number of interleaved streams (MultiStream).
	Streams int

	// JumpProb is the probability of a local jump (StrideMix).
	JumpProb float64

	// ZipfS is the Zipf skew for ZipfRow (0 < s < 2; larger = hotter).
	ZipfS float64

	// WritebackFrac is the fraction of records carrying a writeback.
	WritebackFrac float64
}

// Validate reports profile errors.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile needs a name")
	}
	if p.Bubbles < 0 || p.FootprintMB <= 0 {
		return fmt.Errorf("workload %s: bubbles=%d footprint=%dMB invalid", p.Name, p.Bubbles, p.FootprintMB)
	}
	if p.Pattern == MultiStream && p.Streams < 2 {
		return fmt.Errorf("workload %s: multistream needs >= 2 streams", p.Name)
	}
	if p.Pattern == ZipfRow && (p.ZipfS <= 0 || p.ZipfS >= 2) {
		return fmt.Errorf("workload %s: zipf s=%g out of (0,2)", p.Name, p.ZipfS)
	}
	if p.JumpProb < 0 || p.JumpProb > 1 || p.WritebackFrac < 0 || p.WritebackFrac > 1 {
		return fmt.Errorf("workload %s: probabilities out of range", p.Name)
	}
	return nil
}

// profiles lists the 22 single-core workloads evaluated in the paper
// (SPEC CPU2006 + TPC + STREAM). Parameters are calibrated so measured
// RMPKC spans roughly the paper's 0-20 range and RLTL matches Figures
// 3-4 in shape; see EXPERIMENTS.md for the measured values.
var profiles = []Profile{
	{Name: "tpch6", Pattern: ZipfRow, Bubbles: 500, FootprintMB: 512, ZipfS: 1.10, WritebackFrac: 0.10},
	{Name: "apache20", Pattern: ZipfRow, Bubbles: 420, FootprintMB: 256, ZipfS: 1.15, WritebackFrac: 0.15},
	{Name: "GemsFDTD", Pattern: MultiStream, Bubbles: 350, FootprintMB: 800, Streams: 3, WritebackFrac: 0.30},
	{Name: "mcf", Pattern: ZipfRow, Bubbles: 90, FootprintMB: 1700, ZipfS: 0.80, WritebackFrac: 0.20},
	{Name: "sphinx3", Pattern: StrideMix, Bubbles: 220, FootprintMB: 180, JumpProb: 0.30, WritebackFrac: 0.05},
	{Name: "tpch2", Pattern: ZipfRow, Bubbles: 200, FootprintMB: 512, ZipfS: 1.15, WritebackFrac: 0.10},
	{Name: "astar", Pattern: StrideMix, Bubbles: 200, FootprintMB: 170, JumpProb: 0.50, WritebackFrac: 0.20},
	{Name: "hmmer", Pattern: Stream, Bubbles: 250, FootprintMB: 2, WritebackFrac: 0.30},
	{Name: "milc", Pattern: MultiStream, Bubbles: 280, FootprintMB: 680, Streams: 2, WritebackFrac: 0.25},
	{Name: "bwaves", Pattern: MultiStream, Bubbles: 260, FootprintMB: 870, Streams: 3, WritebackFrac: 0.20},
	{Name: "lbm", Pattern: MultiStream, Bubbles: 240, FootprintMB: 400, Streams: 4, WritebackFrac: 0.50},
	{Name: "omnetpp", Pattern: ZipfRow, Bubbles: 80, FootprintMB: 160, ZipfS: 0.85, WritebackFrac: 0.25},
	{Name: "tonto", Pattern: StrideMix, Bubbles: 90, FootprintMB: 50, JumpProb: 0.20, WritebackFrac: 0.30},
	{Name: "bzip2", Pattern: StrideMix, Bubbles: 85, FootprintMB: 100, JumpProb: 0.35, WritebackFrac: 0.30},
	{Name: "leslie3d", Pattern: MultiStream, Bubbles: 210, FootprintMB: 120, Streams: 3, WritebackFrac: 0.30},
	{Name: "sjeng", Pattern: Random, Bubbles: 70, FootprintMB: 170, WritebackFrac: 0.30},
	{Name: "tpcc64", Pattern: ZipfRow, Bubbles: 60, FootprintMB: 1000, ZipfS: 1.10, WritebackFrac: 0.30},
	{Name: "cactusADM", Pattern: MultiStream, Bubbles: 180, FootprintMB: 650, Streams: 2, WritebackFrac: 0.35},
	{Name: "libquantum", Pattern: MultiStream, Bubbles: 70, FootprintMB: 32, Streams: 2, WritebackFrac: 0.25},
	{Name: "soplex", Pattern: StrideMix, Bubbles: 35, FootprintMB: 250, JumpProb: 0.40, WritebackFrac: 0.15},
	{Name: "tpch17", Pattern: ZipfRow, Bubbles: 30, FootprintMB: 512, ZipfS: 1.15, WritebackFrac: 0.10},
	{Name: "STREAMcopy", Pattern: MultiStream, Bubbles: 24, FootprintMB: 256, Streams: 3, WritebackFrac: 0.50},
}

// Profiles returns the 22 single-core workloads in canonical order.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// Names returns the canonical workload names.
func Names() []string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	sorted := Names()
	sort.Strings(sorted)
	return Profile{}, fmt.Errorf("workload: unknown workload %q (have %v)", name, sorted)
}

// EightCoreMixes returns n multiprogrammed mixes of 8 workloads each,
// composed by assigning a randomly-chosen application to each core
// (Section 5 of the paper), deterministically from seed.
func EightCoreMixes(seed uint64, n int) [][]string {
	rng := newRNG(seed)
	mixes := make([][]string, n)
	for i := range mixes {
		mix := make([]string, 8)
		for c := range mix {
			mix[c] = profiles[rng.intn(len(profiles))].Name
		}
		mixes[i] = mix
	}
	return mixes
}
