package prof

import "testing"

func TestNilTimerIsInert(t *testing.T) {
	var tm *Timer
	if got := tm.Begin(Select); got != 0 {
		t.Fatalf("nil Begin = %d, want 0", got)
	}
	tm.End(Select, 0, 10) // must not panic
	if got := tm.Calls(Select); got != 0 {
		t.Fatalf("nil Calls = %d, want 0", got)
	}
	if got := tm.SamplePeriod(); got != 0 {
		t.Fatalf("nil SamplePeriod = %d, want 0", got)
	}
}

func TestSamplingStride(t *testing.T) {
	var samples int
	tm := NewTimer(4, func(p Phase, ns, at int64) {
		if p != Issue {
			t.Fatalf("sink phase = %v, want Issue", p)
		}
		if ns < 0 {
			t.Fatalf("negative sample %d", ns)
		}
		samples++
	})
	const calls = 17
	for i := 0; i < calls; i++ {
		start := tm.Begin(Issue)
		tm.End(Issue, start, int64(i))
	}
	if got := tm.Calls(Issue); got != calls {
		t.Fatalf("Calls = %d, want %d", got, calls)
	}
	// period 4 samples calls 1, 5, 9, 13, 17.
	if want := 5; samples != want {
		t.Fatalf("samples = %d, want %d", samples, want)
	}
}

func TestPeriodOneSamplesEveryCall(t *testing.T) {
	var samples int
	tm := NewTimer(1, func(Phase, int64, int64) { samples++ })
	for i := 0; i < 6; i++ {
		tm.End(Callback, tm.Begin(Callback), 0)
	}
	if samples != 6 {
		t.Fatalf("samples = %d, want 6", samples)
	}
}

func TestDefaultPeriod(t *testing.T) {
	tm := NewTimer(0, func(Phase, int64, int64) {})
	if got := tm.SamplePeriod(); got != DefaultSamplePeriod {
		t.Fatalf("SamplePeriod = %d, want %d", got, DefaultSamplePeriod)
	}
}

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{
		LLCLookup: "llc-lookup",
		Enqueue:   "enqueue",
		Select:    "select",
		Issue:     "issue",
		Complete:  "complete",
		Callback:  "callback",
		NumPhases: "unknown",
	}
	for p, s := range want {
		if got := p.String(); got != s {
			t.Fatalf("Phase(%d).String() = %q, want %q", p, got, s)
		}
	}
}

func TestZeroAllocTimer(t *testing.T) {
	tm := NewTimer(8, func(Phase, int64, int64) {})
	avg := testing.AllocsPerRun(1000, func() {
		tm.End(Select, tm.Begin(Select), 42)
	})
	if avg != 0 {
		t.Fatalf("timer path allocates %.1f per op, want 0", avg)
	}
}
