// Package prof is the simulator's per-access phase profiler: a sampled
// wall-clock timer that attributes host time to the coarse phases every
// memory access passes through (LLC lookup, controller enqueue, FR-FCFS
// select, DRAM command issue, completion drain, callback hop).
//
// It is a leaf package (standard library only) so the component layers
// (cache, memctrl, dram, sim) can hold a *Timer without importing the
// analysis package that consumes the samples — analysis imports those
// layers for its probe interfaces, and a direct dependency would cycle.
//
// The profiler is opt-in and sampled: Begin counts every call but only
// reads the clock on every period-th one, so the enabled path stays a
// few increments per phase crossing and the disabled path (nil *Timer)
// is a single branch. Wall-clock durations are host-dependent and NOT
// deterministic — consumers must exclude them from bit-identity
// comparisons (the differential suite strips the phase report).
package prof

import "time"

// Phase identifies one segment of the per-access path.
type Phase uint8

const (
	// LLCLookup covers cache.LLC.Access: tag match, MSHR search,
	// miss allocation and writeback scheduling.
	LLCLookup Phase = iota
	// Enqueue covers memctrl enqueue: deferred-sweep settle, bank
	// queue push and probe hooks.
	Enqueue
	// Select covers one FR-FCFS scheduling pass (the two-pass
	// row-hit / oldest-first selection over the per-bank queues).
	Select
	// Issue covers dram.Channel.Issue: legality check, timing
	// register updates and command counting.
	Issue
	// Complete covers the controller's completion drain, inclusive
	// of the Callback hops it triggers (callbacks run nested inside
	// the drain, so Complete time contains Callback time).
	Complete
	// Callback covers one request's OnComplete hop back into the
	// core model (pool recycle, core wakeup).
	Callback

	// NumPhases is the number of profiled phases.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"llc-lookup", "enqueue", "select", "issue", "complete", "callback",
}

// String returns the phase's table label.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// DefaultSamplePeriod is the sampling stride when a Timer is built with
// period <= 0: one timed crossing per 64 calls keeps clock reads off
// the hot path while converging quickly on steady-state shares.
const DefaultSamplePeriod = 64

// Sink receives one sampled phase duration. at is the component's
// current cycle in whatever clock domain the caller registered (the
// consumer buckets it into epochs); ns is the sampled wall-clock
// duration in nanoseconds.
type Sink func(p Phase, ns int64, at int64)

// Timer is the sampled phase clock. One Timer is shared by every hook
// site of a simulation; the simulator is single-threaded, so no
// synchronization. A nil *Timer is valid and disables all methods.
type Timer struct {
	period uint64
	calls  [NumPhases]uint64
	base   time.Time
	sink   Sink
}

// NewTimer builds a timer sampling one crossing in period (<= 0 =
// DefaultSamplePeriod) per phase, forwarding samples to sink.
func NewTimer(period int, sink Sink) *Timer {
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	return &Timer{period: uint64(period), base: time.Now(), sink: sink}
}

// Begin records one crossing of phase p and, on sampled calls, returns
// an opaque nonzero start token for End. Unsampled calls (and a nil
// receiver) return 0, which End ignores.
//
//ccsim:zeroalloc
func (t *Timer) Begin(p Phase) int64 {
	if t == nil {
		return 0
	}
	t.calls[p]++
	if t.period > 1 && t.calls[p]%t.period != 1 {
		return 0
	}
	// +1 keeps the first sample's token distinguishable from the
	// "unsampled" zero sentinel.
	return int64(time.Since(t.base)) + 1
}

// End completes a sampled crossing started by Begin, forwarding the
// measured duration and the caller's current cycle to the sink. start
// == 0 (an unsampled Begin) is a no-op.
//
//ccsim:zeroalloc
func (t *Timer) End(p Phase, start int64, at int64) {
	if t == nil || start == 0 {
		return
	}
	ns := int64(time.Since(t.base)) + 1 - start
	if ns < 0 {
		ns = 0
	}
	t.sink(p, ns, at)
}

// ResetCalls zeroes the per-phase call counters (after simulation
// warm-up) without disturbing the sampling clock.
func (t *Timer) ResetCalls() {
	if t != nil {
		t.calls = [NumPhases]uint64{}
	}
}

// Calls returns how many times phase p began (sampled or not).
func (t *Timer) Calls(p Phase) uint64 {
	if t == nil {
		return 0
	}
	return t.calls[p]
}

// SamplePeriod returns the effective sampling stride.
func (t *Timer) SamplePeriod() int {
	if t == nil {
		return 0
	}
	return int(t.period)
}
