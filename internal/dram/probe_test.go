package dram

import "testing"

// recProbe records every observed command for assertions.
type recProbe struct {
	cmds   []Command
	nows   []Cycle
	stalls []Cycle
	fasts  []bool
}

func (p *recProbe) ObserveCommand(cmd Command, now, fawStall Cycle, fast bool) {
	p.cmds = append(p.cmds, cmd)
	p.nows = append(p.nows, now)
	p.stalls = append(p.stalls, fawStall)
	p.fasts = append(p.fasts, fast)
}

// issueEarliest scans forward from cycle from and issues cmd at the
// first legal cycle, returning it.
func issueEarliest(t *testing.T, ch *Channel, cmd Command, from Cycle) Cycle {
	t.Helper()
	for c := from; c < from+10_000; c++ {
		if ch.CanIssue(cmd, c) {
			ch.Issue(cmd, c)
			return c
		}
	}
	t.Fatalf("command %v never became legal", cmd)
	return 0
}

// TestProbeObservesCommands checks that every issued command reaches the
// probe with its issue cycle and fast-class annotation.
func TestProbeObservesCommands(t *testing.T) {
	ch := mustChannel(t)
	var p recProbe
	ch.SetProbe(&p)
	cls := ch.Spec().Timing.DefaultClass()

	actAt := issueEarliest(t, ch, Act(0, 0, 3, cls), 0)
	rdAt := issueEarliest(t, ch, Read(0, 0, 0), actAt)
	fast := cls
	fast.RCD -= 2
	act2At := issueEarliest(t, ch, Act(0, 1, 5, fast), rdAt)

	if len(p.cmds) != 3 {
		t.Fatalf("probe saw %d commands, want 3", len(p.cmds))
	}
	if p.cmds[0].Kind != CmdACT || p.nows[0] != actAt || p.fasts[0] {
		t.Errorf("cmd 0 = %v at %d fast=%v, want default-class ACT at %d",
			p.cmds[0], p.nows[0], p.fasts[0], actAt)
	}
	if p.cmds[1].Kind != CmdRD || p.nows[1] != rdAt {
		t.Errorf("cmd 1 = %v at %d, want RD at %d", p.cmds[1], p.nows[1], rdAt)
	}
	if p.cmds[2].Kind != CmdACT || p.nows[2] != act2At || !p.fasts[2] {
		t.Errorf("cmd 2 = %v at %d fast=%v, want lowered-class ACT at %d",
			p.cmds[2], p.nows[2], p.fasts[2], act2At)
	}
	ch.SetProbe(nil)
	issueEarliest(t, ch, Act(0, 2, 1, cls), act2At)
	if len(p.cmds) != 3 {
		t.Errorf("probe saw a command after removal")
	}
}

// TestProbeFAWStallAttribution drives four back-to-back activations so
// the four-activate window is full, then activates a fifth, fresh bank:
// its entire issue delay is tFAW pressure (the bank itself was ready at
// cycle 0), which the probe must attribute exactly.
func TestProbeFAWStallAttribution(t *testing.T) {
	ch := mustChannel(t)
	var p recProbe
	ch.SetProbe(&p)
	cls := ch.Spec().Timing.DefaultClass()

	at := Cycle(0)
	for b := 0; b < 4; b++ {
		at = issueEarliest(t, ch, Act(0, b, 1, cls), at)
	}
	ready := ch.EarliestActivate(0, 4)
	fifth := issueEarliest(t, ch, Act(0, 4, 1, cls), at)
	if fifth <= at {
		t.Fatalf("fifth ACT at %d not delayed past fourth at %d", fifth, at)
	}

	for i := 0; i < 4; i++ {
		if p.stalls[i] != 0 {
			t.Errorf("ACT %d stall = %d, want 0 (window not yet full)", i, p.stalls[i])
		}
	}
	want := fifth - ready
	if p.stalls[4] != want {
		t.Errorf("fifth ACT stall = %d, want %d (issued at %d, bank ready at %d)",
			p.stalls[4], want, fifth, ready)
	}
	if p.stalls[4] == 0 {
		t.Errorf("tFAW did not bind on DDR3-1600 (FAW=%d RRD=%d)",
			ch.Spec().Timing.FAW, ch.Spec().Timing.RRD)
	}
}

// TestIssueZeroAlloc proves the probe hook keeps the command path
// allocation-free, both disabled (one nil check) and with a
// non-allocating probe installed.
func TestIssueZeroAlloc(t *testing.T) {
	run := func(t *testing.T, probe CommandProbe) {
		t.Helper()
		ch := mustChannel(t)
		ch.SetProbe(probe)
		cls := ch.Spec().Timing.DefaultClass()
		tm := ch.Spec().Timing
		now := Cycle(0)
		allocs := testing.AllocsPerRun(200, func() {
			ch.Issue(Act(0, 0, 1, cls), now)
			ch.Issue(Pre(0, 0), now+Cycle(tm.RAS))
			now += 1_000
		})
		if allocs != 0 {
			t.Errorf("Issue allocated %.1f times per ACT+PRE pair, want 0", allocs)
		}
	}
	t.Run("disabled", func(t *testing.T) { run(t, nil) })
	t.Run("enabled", func(t *testing.T) { run(t, &countProbe{}) })
}

// countProbe is a minimal non-allocating probe.
type countProbe struct{ n int }

func (p *countProbe) ObserveCommand(Command, Cycle, Cycle, bool) { p.n++ }
