package dram

import "testing"

func testSpec() Spec { return DDR31600(1) }

func mustChannel(t *testing.T) *Channel {
	t.Helper()
	ch, err := NewChannel(testSpec())
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	return ch
}

func TestSpecValidates(t *testing.T) {
	for _, channels := range []int{1, 2, 4} {
		if err := DDR31600(channels).Validate(); err != nil {
			t.Errorf("DDR31600(%d) invalid: %v", channels, err)
		}
	}
}

func TestSpecTable1Values(t *testing.T) {
	s := testSpec()
	if s.Timing.RCD != 11 || s.Timing.RAS != 28 {
		t.Errorf("tRCD/tRAS = %d/%d, Table 1 wants 11/28", s.Timing.RCD, s.Timing.RAS)
	}
	if s.Geometry.Banks != 8 {
		t.Errorf("banks = %d, want 8", s.Geometry.Banks)
	}
	if s.Geometry.Rows != 64*1024 {
		t.Errorf("rows = %d, want 64K", s.Geometry.Rows)
	}
	if got := s.Geometry.RowBufferBytes(); got != 8*1024 {
		t.Errorf("row buffer = %dB, want 8KB", got)
	}
	if s.BusMHz != 800 {
		t.Errorf("bus = %dMHz, want 800", s.BusMHz)
	}
}

func TestGeometryTotalBytes(t *testing.T) {
	s := DDR31600(2)
	// 2 ch x 1 rank x 8 banks x 64K rows x 8KB rows = 8 GiB.
	want := uint64(8) << 30
	if got := s.Geometry.TotalBytes(); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
}

func TestGeometryValidateRejectsNonPowerOfTwo(t *testing.T) {
	g := testSpec().Geometry
	g.Banks = 6
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted non-power-of-two bank count")
	}
	g = testSpec().Geometry
	g.Rows = 0
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted zero rows")
	}
}

func TestTimingValidateRejectsBadRC(t *testing.T) {
	tm := testSpec().Timing
	tm.RC = tm.RAS // < RAS+RP
	if err := tm.Validate(); err == nil {
		t.Error("Validate accepted tRC < tRAS+tRP")
	}
}

func TestCyclesFromNanos(t *testing.T) {
	s := testSpec() // tCK = 1.25ns
	cases := []struct {
		ns   float64
		want int
	}{
		{13.75, 11},
		{35, 28},
		{8, 7},    // rounds up: 6.4 cycles
		{22, 18},  // 17.6
		{1.25, 1}, // exact
		{1.26, 2},
	}
	for _, c := range cases {
		if got := s.CyclesFromNanos(c.ns); got != c.want {
			t.Errorf("CyclesFromNanos(%g) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestNanosCyclesRoundTrip(t *testing.T) {
	s := testSpec()
	if got := s.NanosFromCycles(28); got != 35 {
		t.Errorf("NanosFromCycles(28) = %g, want 35", got)
	}
	if got := s.MillisecondsToCycles(1); got != 800_000 {
		t.Errorf("MillisecondsToCycles(1) = %d, want 800000", got)
	}
	if got := s.CyclesToMilliseconds(800_000); got != 1 {
		t.Errorf("CyclesToMilliseconds(800000) = %g, want 1", got)
	}
}

func TestActivateThenReadTiming(t *testing.T) {
	ch := mustChannel(t)
	cls := ch.Spec().Timing.DefaultClass()

	act := Act(0, 0, 42, cls)
	if !ch.CanIssue(act, 0) {
		t.Fatal("ACT not issuable at cycle 0")
	}
	ch.Issue(act, 0)

	rd := Read(0, 0, 7)
	for c := Cycle(0); c < Cycle(ch.Spec().Timing.RCD); c++ {
		if ch.CanIssue(rd, c) {
			t.Fatalf("RD issuable at %d, before tRCD=%d", c, ch.Spec().Timing.RCD)
		}
	}
	if !ch.CanIssue(rd, Cycle(ch.Spec().Timing.RCD)) {
		t.Fatalf("RD not issuable at tRCD=%d", ch.Spec().Timing.RCD)
	}
}

func TestReducedTimingClassShortensRCD(t *testing.T) {
	ch := mustChannel(t)
	fast := TimingClass{RCD: 7, RAS: 20}
	ch.Issue(Act(0, 0, 1, fast), 0)
	rd := Read(0, 0, 0)
	if ch.CanIssue(rd, 6) {
		t.Error("RD issuable before reduced tRCD")
	}
	if !ch.CanIssue(rd, 7) {
		t.Error("RD not issuable at reduced tRCD=7")
	}
	pre := Pre(0, 0)
	if ch.CanIssue(pre, 19) {
		t.Error("PRE issuable before reduced tRAS")
	}
	if !ch.CanIssue(pre, 20) {
		t.Error("PRE not issuable at reduced tRAS=20")
	}
	if got := ch.Counts().FastACT; got != 1 {
		t.Errorf("FastACT count = %d, want 1", got)
	}
}

func TestPrechargeRequiresRAS(t *testing.T) {
	ch := mustChannel(t)
	tm := ch.Spec().Timing
	ch.Issue(Act(0, 0, 3, tm.DefaultClass()), 0)
	pre := Pre(0, 0)
	if ch.CanIssue(pre, Cycle(tm.RAS-1)) {
		t.Error("PRE issuable before tRAS")
	}
	if !ch.CanIssue(pre, Cycle(tm.RAS)) {
		t.Error("PRE not issuable at tRAS")
	}
	ch.Issue(pre, Cycle(tm.RAS))
	act := Act(0, 0, 4, tm.DefaultClass())
	if ch.CanIssue(act, Cycle(tm.RAS+tm.RP-1)) {
		t.Error("ACT issuable before tRP elapsed")
	}
	if !ch.CanIssue(act, Cycle(tm.RAS+tm.RP)) {
		t.Error("ACT not issuable after tRP")
	}
}

func TestReadDelaysPrechargeByRTP(t *testing.T) {
	ch := mustChannel(t)
	tm := ch.Spec().Timing
	ch.Issue(Act(0, 0, 3, tm.DefaultClass()), 0)
	// Read late, so tRTP (not tRAS) is the binding constraint on PRE.
	rdAt := Cycle(tm.RAS)
	ch.Issue(Read(0, 0, 0), rdAt)
	pre := Pre(0, 0)
	if ch.CanIssue(pre, rdAt+Cycle(tm.RTP)-1) {
		t.Error("PRE issuable before tRTP after RD")
	}
	if !ch.CanIssue(pre, rdAt+Cycle(tm.RTP)) {
		t.Error("PRE not issuable at tRTP after RD")
	}
}

func TestWriteRecoveryDelaysPrecharge(t *testing.T) {
	ch := mustChannel(t)
	tm := ch.Spec().Timing
	ch.Issue(Act(0, 0, 3, tm.DefaultClass()), 0)
	wrAt := Cycle(tm.RCD)
	ch.Issue(Write(0, 0, 0), wrAt)
	preOK := wrAt + Cycle(tm.CWL+tm.BL+tm.WR)
	pre := Pre(0, 0)
	if ch.CanIssue(pre, preOK-1) {
		t.Error("PRE issuable before write recovery")
	}
	if !ch.CanIssue(pre, preOK) {
		t.Error("PRE not issuable after write recovery")
	}
}

func TestSameBankActToActRespectsRC(t *testing.T) {
	ch := mustChannel(t)
	tm := ch.Spec().Timing
	ch.Issue(Act(0, 0, 1, tm.DefaultClass()), 0)
	ch.Issue(Pre(0, 0), Cycle(tm.RAS))
	act := Act(0, 0, 2, tm.DefaultClass())
	// tRC = 39 > tRAS+tRP = 39 here, equal; check boundary via RC.
	if ch.CanIssue(act, Cycle(tm.RC)-1) {
		t.Error("ACT issuable before tRC")
	}
	if !ch.CanIssue(act, Cycle(tm.RC)) {
		t.Error("ACT not issuable at tRC")
	}
}

func TestRRDBetweenBanks(t *testing.T) {
	ch := mustChannel(t)
	tm := ch.Spec().Timing
	ch.Issue(Act(0, 0, 1, tm.DefaultClass()), 0)
	act := Act(0, 1, 1, tm.DefaultClass())
	if ch.CanIssue(act, Cycle(tm.RRD)-1) {
		t.Error("ACT to another bank issuable before tRRD")
	}
	if !ch.CanIssue(act, Cycle(tm.RRD)) {
		t.Error("ACT to another bank not issuable at tRRD")
	}
}

func TestFAWLimitsActivates(t *testing.T) {
	ch := mustChannel(t)
	tm := ch.Spec().Timing
	cls := tm.DefaultClass()
	// Issue 4 ACTs as fast as tRRD allows.
	var at Cycle
	for b := 0; b < 4; b++ {
		ch.Issue(Act(0, b, 1, cls), at)
		at += Cycle(tm.RRD)
	}
	// Fifth ACT must wait for the first ACT's tFAW window.
	fifth := Act(0, 4, 1, cls)
	fawReady := Cycle(tm.FAW) // first ACT at cycle 0
	for c := at; c < fawReady; c++ {
		if ch.CanIssue(fifth, c) {
			t.Fatalf("5th ACT issuable at %d inside tFAW window (ends %d)", c, fawReady)
		}
	}
	if !ch.CanIssue(fifth, fawReady) {
		t.Errorf("5th ACT not issuable at end of tFAW window (%d)", fawReady)
	}
}

func TestCCDBetweenReads(t *testing.T) {
	ch := mustChannel(t)
	tm := ch.Spec().Timing
	ch.Issue(Act(0, 0, 1, tm.DefaultClass()), 0)
	rd0 := Cycle(tm.RCD)
	ch.Issue(Read(0, 0, 0), rd0)
	rd := Read(0, 0, 1)
	if ch.CanIssue(rd, rd0+Cycle(tm.CCD)-1) {
		t.Error("second RD issuable before tCCD")
	}
	if !ch.CanIssue(rd, rd0+Cycle(tm.CCD)) {
		t.Error("second RD not issuable at tCCD")
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	ch := mustChannel(t)
	tm := ch.Spec().Timing
	ch.Issue(Act(0, 0, 1, tm.DefaultClass()), 0)
	wrAt := Cycle(tm.RCD)
	ch.Issue(Write(0, 0, 0), wrAt)
	rdOK := wrAt + Cycle(tm.CWL+tm.BL+tm.WTR)
	rd := Read(0, 0, 1)
	if ch.CanIssue(rd, rdOK-1) {
		t.Error("RD issuable before tWTR")
	}
	if !ch.CanIssue(rd, rdOK) {
		t.Error("RD not issuable after tWTR")
	}
}

func TestReadToWriteTurnaround(t *testing.T) {
	ch := mustChannel(t)
	tm := ch.Spec().Timing
	ch.Issue(Act(0, 0, 1, tm.DefaultClass()), 0)
	rdAt := Cycle(tm.RCD)
	ch.Issue(Read(0, 0, 0), rdAt)
	wr := Write(0, 0, 1)
	wrOK := rdAt + Cycle(tm.RTW)
	if ch.CanIssue(wr, wrOK-1) {
		t.Error("WR issuable before read-to-write turnaround")
	}
	if !ch.CanIssue(wr, wrOK) {
		t.Error("WR not issuable after read-to-write turnaround")
	}
}

func TestRefreshRequiresAllBanksPrecharged(t *testing.T) {
	ch := mustChannel(t)
	tm := ch.Spec().Timing
	ch.Issue(Act(0, 0, 1, tm.DefaultClass()), 0)
	ref := Refresh(0)
	if ch.CanIssue(ref, 100) {
		t.Error("REF issuable with a bank open")
	}
	ch.Issue(Pre(0, 0), Cycle(tm.RAS))
	preDone := Cycle(tm.RAS + tm.RP)
	if !ch.CanIssue(ref, preDone) {
		t.Error("REF not issuable with all banks precharged")
	}
	ch.Issue(ref, preDone)
	// During tRFC nothing else can issue to this rank.
	act := Act(0, 0, 1, tm.DefaultClass())
	if ch.CanIssue(act, preDone+Cycle(tm.RFC)-1) {
		t.Error("ACT issuable during tRFC")
	}
	if !ch.CanIssue(act, preDone+Cycle(tm.RFC)) {
		t.Error("ACT not issuable after tRFC")
	}
	if !ch.Refreshing(0, preDone+1) {
		t.Error("Refreshing() false during tRFC")
	}
	if ch.Refreshing(0, preDone+Cycle(tm.RFC)) {
		t.Error("Refreshing() true after tRFC")
	}
}

func TestIssueIllegalCommandPanics(t *testing.T) {
	ch := mustChannel(t)
	defer func() {
		if recover() == nil {
			t.Error("Issue of illegal command did not panic")
		}
	}()
	ch.Issue(Read(0, 0, 0), 0) // no row open
}

func TestReadOnClosedBankIllegal(t *testing.T) {
	ch := mustChannel(t)
	if ch.CanIssue(Read(0, 0, 0), 10) {
		t.Error("RD issuable on precharged bank")
	}
	if ch.CanIssue(Pre(0, 0), 10) {
		t.Error("PRE issuable on precharged bank")
	}
}

func TestOpenRowTracking(t *testing.T) {
	ch := mustChannel(t)
	tm := ch.Spec().Timing
	if _, open := ch.OpenRow(0, 0); open {
		t.Error("bank reports open row before any ACT")
	}
	ch.Issue(Act(0, 0, 99, tm.DefaultClass()), 0)
	if row, open := ch.OpenRow(0, 0); !open || row != 99 {
		t.Errorf("OpenRow = (%d,%v), want (99,true)", row, open)
	}
	ch.Issue(Pre(0, 0), Cycle(tm.RAS))
	if _, open := ch.OpenRow(0, 0); open {
		t.Error("bank reports open row after PRE")
	}
}

func TestCommandCounts(t *testing.T) {
	ch := mustChannel(t)
	tm := ch.Spec().Timing
	ch.Issue(Act(0, 0, 1, tm.DefaultClass()), 0)
	ch.Issue(Read(0, 0, 0), Cycle(tm.RCD))
	ch.Issue(Write(0, 0, 1), Cycle(tm.RCD+tm.RTW))
	got := ch.Counts()
	if got.ACT != 1 || got.RD != 1 || got.WR != 1 || got.FastACT != 0 {
		t.Errorf("counts = %+v", got)
	}
	if got.RASCycles != uint64(tm.RAS) {
		t.Errorf("RASCycles = %d, want %d", got.RASCycles, tm.RAS)
	}
}

func TestOccupancyAccounting(t *testing.T) {
	ch := mustChannel(t)
	tm := ch.Spec().Timing
	ch.Issue(Act(0, 0, 1, tm.DefaultClass()), 0)
	ch.Issue(Pre(0, 0), Cycle(tm.RAS))
	ch.SyncAccounting(100)
	occ := ch.Occupancy()
	if occ.ActiveCycles != Cycle(tm.RAS) {
		t.Errorf("ActiveCycles = %d, want %d", occ.ActiveCycles, tm.RAS)
	}
	if occ.TotalCycles != 100 {
		t.Errorf("TotalCycles = %d, want 100", occ.TotalCycles)
	}
	if occ.RefreshCycles != 0 {
		t.Errorf("RefreshCycles = %d, want 0", occ.RefreshCycles)
	}
}

func TestRefreshOccupancyAccounting(t *testing.T) {
	ch := mustChannel(t)
	tm := ch.Spec().Timing
	ch.Issue(Refresh(0), 10)
	ch.SyncAccounting(10 + Cycle(tm.RFC) + 50)
	occ := ch.Occupancy()
	if occ.RefreshCycles != Cycle(tm.RFC) {
		t.Errorf("RefreshCycles = %d, want %d", occ.RefreshCycles, tm.RFC)
	}
	if occ.ActiveCycles != 0 {
		t.Errorf("ActiveCycles = %d, want 0", occ.ActiveCycles)
	}
}

func TestDataBusOccupancyBlocksOverlap(t *testing.T) {
	ch := mustChannel(t)
	tm := ch.Spec().Timing
	ch.Issue(Act(0, 0, 1, tm.DefaultClass()), 0)
	ch.Issue(Act(0, 1, 1, tm.DefaultClass()), Cycle(tm.RRD))
	// First read once both banks are past their tRCD.
	rd0 := Cycle(tm.RRD + tm.RCD)
	ch.Issue(Read(0, 0, 0), rd0)
	// A second read on another bank: tCCD (4) equals the burst length, so
	// the bus constraint coincides with tCCD here; verify both hold.
	rd := Read(0, 1, 0)
	if ch.CanIssue(rd, rd0+1) {
		t.Error("overlapping data burst allowed")
	}
	if !ch.CanIssue(rd, rd0+Cycle(tm.CCD)) {
		t.Error("back-to-back burst at tCCD not allowed")
	}
}

func TestCommandStrings(t *testing.T) {
	cls := TimingClass{RCD: 7, RAS: 20}
	cases := []struct {
		cmd  Command
		want string
	}{
		{Act(0, 1, 5, cls), "ACT r0 b1 row5 (tRCD=7 tRAS=20)"},
		{Pre(0, 2), "PRE r0 b2"},
		{Read(1, 3, 9), "RD r1 b3 col9"},
		{Write(0, 0, 0), "WR r0 b0 col0"},
		{Refresh(1), "REF r1"},
	}
	for _, c := range cases {
		if got := c.cmd.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if CmdACT.String() != "ACT" || CommandKind(200).String() == "" {
		t.Error("CommandKind.String misbehaves")
	}
}

func TestBankStateString(t *testing.T) {
	if BankPrecharged.String() != "precharged" || BankActive.String() != "active" {
		t.Error("BankState.String misbehaves")
	}
}

func TestReadWriteDataAt(t *testing.T) {
	ch := mustChannel(t)
	tm := ch.Spec().Timing
	if got := ch.ReadDataAt(100); got != 100+Cycle(tm.CL+tm.BL) {
		t.Errorf("ReadDataAt = %d", got)
	}
	if got := ch.WriteDataAt(100); got != 100+Cycle(tm.CWL+tm.BL) {
		t.Errorf("WriteDataAt = %d", got)
	}
}

func TestNewChannelRejectsInvalidSpec(t *testing.T) {
	s := testSpec()
	s.Geometry.Banks = 0
	if _, err := NewChannel(s); err == nil {
		t.Error("NewChannel accepted invalid spec")
	}
}

func TestCanIssueRejectsOutOfRange(t *testing.T) {
	ch := mustChannel(t)
	cls := ch.Spec().Timing.DefaultClass()
	if ch.CanIssue(Act(5, 0, 0, cls), 0) {
		t.Error("ACT to nonexistent rank allowed")
	}
	if ch.CanIssue(Act(0, 99, 0, cls), 0) {
		t.Error("ACT to nonexistent bank allowed")
	}
	if ch.CanIssue(Act(0, 0, 1<<30, cls), 0) {
		t.Error("ACT to nonexistent row allowed")
	}
	ch.Issue(Act(0, 0, 0, cls), 0)
	if ch.CanIssue(Read(0, 0, 1<<20), 50) {
		t.Error("RD to nonexistent column allowed")
	}
}
