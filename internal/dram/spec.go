package dram

// DDR31600 returns the DDR3-1600 specification evaluated in the paper
// (Table 1): 800 MHz bus, 1 rank/channel, 8 banks/rank, 64K rows/bank,
// 8 KB row buffer, 64 B cache lines, tRCD/tRAS = 11/28 bus cycles.
//
// channels selects the number of channels (the paper uses 1 for
// single-core and 2 for eight-core configurations).
func DDR31600(channels int) Spec {
	return Spec{
		Geometry: Geometry{
			Channels:  channels,
			Ranks:     1,
			Banks:     8,
			Rows:      64 * 1024,
			Columns:   128, // 8 KB row buffer / 64 B lines
			LineBytes: 64,
		},
		Timing: Timing{
			RCD: 11, // 13.75 ns
			RAS: 28, // 35 ns
			RP:  11, // 13.75 ns
			RC:  39, // 48.75 ns

			CL:  11,
			CWL: 8,
			BL:  4, // BL8 at double data rate

			CCD: 4,
			RRD: 5, // 6.25 ns (tRRD for 8 KB pages, DDR3-1600)
			FAW: 24,

			RTP: 6,
			WR:  12, // 15 ns
			WTR: 6,  // 7.5 ns
			// Read-to-write turnaround: CL + CCD + 2 - CWL.
			RTW: 11 + 4 + 2 - 8,

			RTRS: 2,

			RFC:  208,  // 260 ns for a 4 Gb device
			REFI: 6240, // 7.8 us

			RetentionWindow: 64 * msCycles800,
			RCFromClass:     true,
		},
		BusMHz: 800,
	}
}

// msCycles800 is the number of 800 MHz bus cycles in one millisecond.
const msCycles800 = 800_000

// MillisecondsToCycles converts milliseconds to bus cycles for this spec.
func (s Spec) MillisecondsToCycles(ms float64) Cycle {
	return Cycle(ms * float64(s.BusMHz) * 1000.0)
}

// CyclesToMilliseconds converts bus cycles to milliseconds for this spec.
func (s Spec) CyclesToMilliseconds(c Cycle) float64 {
	return float64(c) / (float64(s.BusMHz) * 1000.0)
}
