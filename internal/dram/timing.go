package dram

// timingTable holds the per-spec timing parameters precomputed into the
// combined, Cycle-typed constants the command path applies at Issue
// time. Deriving them once at channel construction keeps the per-command
// register updates to pure additions and comparisons — no int→Cycle
// conversions or parameter arithmetic on the hot path. The only
// per-command variability left is the activation TimingClass (tRCD/tRAS
// of the issuing ACT), which is read from the command itself.
type timingTable struct {
	rcd Cycle // spec tRCD (default class)
	ras Cycle // spec tRAS (default class)
	rp  Cycle
	rc  Cycle

	cl  Cycle
	cwl Cycle
	bl  Cycle

	ccd Cycle
	rrd Cycle
	faw Cycle

	rtp Cycle
	rtw Cycle

	rtrs Cycle
	rfc  Cycle

	rdBusHold Cycle // CL + BL: data-bus occupancy of one read burst
	wrBusHold Cycle // CWL + BL
	wrToPre   Cycle // CWL + BL + WR: write recovery before PRE
	wrToRd    Cycle // CWL + BL + WTR: write-to-read turnaround

	rcFromClass bool
}

// makeTimingTable precomputes the table from validated spec timing.
func makeTimingTable(t Timing) timingTable {
	return timingTable{
		rcd:         Cycle(t.RCD),
		ras:         Cycle(t.RAS),
		rp:          Cycle(t.RP),
		rc:          Cycle(t.RC),
		cl:          Cycle(t.CL),
		cwl:         Cycle(t.CWL),
		bl:          Cycle(t.BL),
		ccd:         Cycle(t.CCD),
		rrd:         Cycle(t.RRD),
		faw:         Cycle(t.FAW),
		rtp:         Cycle(t.RTP),
		rtw:         Cycle(t.RTW),
		rtrs:        Cycle(t.RTRS),
		rfc:         Cycle(t.RFC),
		rdBusHold:   Cycle(t.CL + t.BL),
		wrBusHold:   Cycle(t.CWL + t.BL),
		wrToPre:     Cycle(t.CWL + t.BL + t.WR),
		wrToRd:      Cycle(t.CWL + t.BL + t.WTR),
		rcFromClass: t.RCFromClass,
	}
}
