package dram

import (
	"strings"
	"testing"
)

func TestCheckerAcceptsLegalSequence(t *testing.T) {
	spec := testSpec()
	ch, _ := NewChannel(spec)
	chk := NewChecker(spec)
	ch.SetTracer(chk.Observe)

	tm := spec.Timing
	cls := tm.DefaultClass()
	ch.Issue(Act(0, 0, 1, cls), 0)
	ch.Issue(Read(0, 0, 0), Cycle(tm.RCD))
	ch.Issue(Pre(0, 0), Cycle(tm.RAS))
	ch.Issue(Act(0, 0, 2, cls), Cycle(tm.RC))
	ch.Issue(Write(0, 0, 0), Cycle(tm.RC+tm.RCD))

	if v := chk.Violations(); len(v) != 0 {
		t.Errorf("violations on legal sequence: %v", v)
	}
}

func TestCheckerFlagsViolations(t *testing.T) {
	spec := testSpec()
	tm := spec.Timing
	cls := tm.DefaultClass()
	cases := []struct {
		name string
		feed func(c *Checker)
		want string
	}{
		{"early RD", func(c *Checker) {
			c.Observe(Act(0, 0, 1, cls), 0)
			c.Observe(Read(0, 0, 0), Cycle(tm.RCD-1))
		}, "tRCD"},
		{"early PRE", func(c *Checker) {
			c.Observe(Act(0, 0, 1, cls), 0)
			c.Observe(Pre(0, 0), Cycle(tm.RAS-1))
		}, "tRAS"},
		{"early reACT", func(c *Checker) {
			c.Observe(Act(0, 0, 1, cls), 0)
			c.Observe(Pre(0, 0), Cycle(tm.RAS))
			c.Observe(Act(0, 0, 2, cls), Cycle(tm.RC-1))
		}, "tR"}, // tRC or tRP, both under tR
		{"RRD", func(c *Checker) {
			c.Observe(Act(0, 0, 1, cls), 0)
			c.Observe(Act(0, 1, 1, cls), Cycle(tm.RRD-1))
		}, "tRRD"},
		{"FAW", func(c *Checker) {
			at := Cycle(0)
			for b := 0; b < 4; b++ {
				c.Observe(Act(0, b, 1, cls), at)
				at += Cycle(tm.RRD)
			}
			c.Observe(Act(0, 4, 1, cls), Cycle(tm.FAW-1))
		}, "tFAW"},
		{"CCD", func(c *Checker) {
			c.Observe(Act(0, 0, 1, cls), 0)
			c.Observe(Read(0, 0, 0), Cycle(tm.RCD))
			c.Observe(Read(0, 0, 1), Cycle(tm.RCD+tm.CCD-1))
		}, "tCCD"},
		{"WTR", func(c *Checker) {
			c.Observe(Act(0, 0, 1, cls), 0)
			c.Observe(Write(0, 0, 0), Cycle(tm.RCD))
			c.Observe(Read(0, 0, 1), Cycle(tm.RCD+tm.CWL+tm.BL+tm.WTR-1))
		}, "tWTR"},
		{"write recovery", func(c *Checker) {
			c.Observe(Act(0, 0, 1, cls), 0)
			c.Observe(Write(0, 0, 0), Cycle(tm.RCD))
			c.Observe(Pre(0, 0), Cycle(tm.RCD+tm.CWL+tm.BL+tm.WR-1))
		}, "tWR"},
		{"RTP", func(c *Checker) {
			c.Observe(Act(0, 0, 1, cls), 0)
			c.Observe(Read(0, 0, 0), Cycle(tm.RAS))
			c.Observe(Pre(0, 0), Cycle(tm.RAS+tm.RTP-1))
		}, "tRTP"},
		{"REF with open bank", func(c *Checker) {
			c.Observe(Act(0, 0, 1, cls), 0)
			c.Observe(Refresh(0), Cycle(tm.RAS+tm.RP))
		}, "open"},
		{"ACT during RFC", func(c *Checker) {
			c.Observe(Refresh(0), 0)
			c.Observe(Act(0, 0, 1, cls), Cycle(tm.RFC-1))
		}, "tRFC"},
		{"column on closed bank", func(c *Checker) {
			c.Observe(Read(0, 0, 0), 10)
		}, "closed"},
		{"double ACT", func(c *Checker) {
			c.Observe(Act(0, 0, 1, cls), 0)
			c.Observe(Act(0, 0, 2, cls), Cycle(tm.RC))
		}, "open bank"},
		{"PRE on closed bank", func(c *Checker) {
			c.Observe(Pre(0, 0), 10)
		}, "closed"},
	}
	for _, tc := range cases {
		chk := NewChecker(spec)
		tc.feed(chk)
		v := chk.Violations()
		if len(v) == 0 {
			t.Errorf("%s: no violation flagged", tc.name)
			continue
		}
		found := false
		for _, msg := range v {
			if strings.Contains(msg, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v do not mention %q", tc.name, v, tc.want)
		}
	}
}

func TestCheckerAcceptsReducedClassUnderDerivedRC(t *testing.T) {
	spec := testSpec() // RCFromClass = true
	chk := NewChecker(spec)
	fast := TimingClass{RCD: 7, RAS: 18}
	tm := spec.Timing
	chk.Observe(Act(0, 0, 1, fast), 0)
	chk.Observe(Read(0, 0, 0), 7)
	chk.Observe(Pre(0, 0), 18)
	chk.Observe(Act(0, 0, 2, fast), Cycle(18+tm.RP)) // derived tRC = 18+11
	if v := chk.Violations(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}

	// Under fixed tRC the same reopen is illegal.
	fixed := spec
	fixed.Timing.RCFromClass = false
	chk2 := NewChecker(fixed)
	chk2.Observe(Act(0, 0, 1, fast), 0)
	chk2.Observe(Pre(0, 0), 18)
	chk2.Observe(Act(0, 0, 2, fast), Cycle(18+tm.RP))
	if len(chk2.Violations()) == 0 {
		t.Error("fixed-tRC checker accepted early reopen")
	}
}

// TestChannelNeverViolatesChecker drives the channel as fast as CanIssue
// allows with a randomized command mix and asserts the independent
// checker never objects — the two implementations must agree.
func TestChannelNeverViolatesChecker(t *testing.T) {
	spec := testSpec()
	ch, _ := NewChannel(spec)
	chk := NewChecker(spec)
	ch.SetTracer(chk.Observe)

	rng := uint64(99)
	next := func(mod int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(mod))
	}
	fast := TimingClass{RCD: 7, RAS: 18}
	issued := 0
	for now := Cycle(0); now < 200_000 && issued < 20_000; now++ {
		bankID := next(spec.Geometry.Banks)
		var cmd Command
		switch next(10) {
		case 0, 1:
			cls := spec.Timing.DefaultClass()
			if next(2) == 0 {
				cls = fast
			}
			cmd = Act(0, bankID, next(64), cls)
		case 2, 3, 4:
			cmd = Read(0, bankID, next(spec.Geometry.Columns))
		case 5, 6:
			cmd = Write(0, bankID, next(spec.Geometry.Columns))
		case 7, 8:
			cmd = Pre(0, bankID)
		default:
			cmd = Refresh(0)
		}
		if ch.CanIssue(cmd, now) {
			ch.Issue(cmd, now)
			issued++
		}
	}
	if issued < 1000 {
		t.Fatalf("stress issued only %d commands", issued)
	}
	if v := chk.Violations(); len(v) != 0 {
		t.Errorf("checker found %d violations, first: %s", len(v), v[0])
	}
}
