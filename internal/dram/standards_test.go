package dram

import "testing"

func TestOtherStandardsValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"LPDDR3", LPDDR31600(1)},
		{"LPDDR3x2", LPDDR31600(2)},
		{"DDR3L", DDR31600LowVoltage(2)},
	} {
		if err := tc.spec.Validate(); err != nil {
			t.Errorf("%s invalid: %v", tc.name, err)
		}
	}
}

func TestLPDDR3Characteristics(t *testing.T) {
	lp := LPDDR31600(1)
	ddr := DDR31600(1)
	if lp.Timing.RCD <= ddr.Timing.RCD {
		t.Error("LPDDR3 tRCD should exceed DDR3 (slower mobile core)")
	}
	if lp.Geometry.RowBufferBytes() >= ddr.Geometry.RowBufferBytes() {
		t.Error("LPDDR3 row buffer should be smaller")
	}
	if lp.Timing.RetentionWindow >= ddr.Timing.RetentionWindow {
		t.Error("LPDDR3 retention class should be shorter")
	}
	if !lp.Timing.RCFromClass {
		t.Error("LPDDR3 should derive tRC from class like DDR3")
	}
}

func TestDDR3LRelaxedTimings(t *testing.T) {
	lv := DDR31600LowVoltage(1)
	std := DDR31600(1)
	if lv.Timing.RCD <= std.Timing.RCD || lv.Timing.RAS <= std.Timing.RAS {
		t.Error("DDR3L timings should be relaxed vs DDR3")
	}
	if lv.Timing.RC < lv.Timing.RAS+lv.Timing.RP {
		t.Error("DDR3L tRC inconsistent")
	}
}

func TestChannelWorksOnOtherStandards(t *testing.T) {
	for _, spec := range []Spec{LPDDR31600(1), DDR31600LowVoltage(1)} {
		ch, err := NewChannel(spec)
		if err != nil {
			t.Fatal(err)
		}
		chk := NewChecker(spec)
		ch.SetTracer(chk.Observe)
		tm := spec.Timing
		ch.Issue(Act(0, 0, 1, tm.DefaultClass()), 0)
		ch.Issue(Read(0, 0, 0), Cycle(tm.RCD))
		ch.Issue(Pre(0, 0), Cycle(tm.RAS))
		if v := chk.Violations(); len(v) != 0 {
			t.Errorf("violations: %v", v)
		}
	}
}
