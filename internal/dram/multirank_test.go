package dram

import "testing"

// twoRankSpec returns a DDR3 spec with two ranks per channel, to
// exercise the rank-to-rank data bus switching (tRTRS) paths.
func twoRankSpec() Spec {
	s := DDR31600(1)
	s.Geometry.Ranks = 2
	return s
}

func TestTwoRankSpecValidates(t *testing.T) {
	if err := twoRankSpec().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRankToRankSwitchPenalty(t *testing.T) {
	spec := twoRankSpec()
	ch, err := NewChannel(spec)
	if err != nil {
		t.Fatal(err)
	}
	tm := spec.Timing
	cls := tm.DefaultClass()
	// Open a row in each rank. Cross-rank ACTs have no tRRD coupling.
	ch.Issue(Act(0, 0, 1, cls), 0)
	if !ch.CanIssue(Act(1, 0, 1, cls), 1) {
		t.Fatal("cross-rank ACT blocked by tRRD")
	}
	ch.Issue(Act(1, 0, 1, cls), 1)

	rd0 := Cycle(tm.RCD)
	ch.Issue(Read(0, 0, 0), rd0)
	// A read to the other rank must additionally wait for the bus switch.
	crossOK := rd0 + Cycle(tm.BL) + Cycle(tm.RTRS)
	rd1 := Read(1, 0, 0)
	if ch.CanIssue(rd1, crossOK-1) {
		t.Error("cross-rank read allowed without tRTRS gap")
	}
	if !ch.CanIssue(rd1, crossOK) {
		t.Error("cross-rank read blocked after tRTRS gap")
	}
}

// TestTwoRankRandomSoak stress-drives a two-rank channel with the
// protocol checker attached: same-rank and cross-rank interleavings must
// all be legal.
func TestTwoRankRandomSoak(t *testing.T) {
	spec := twoRankSpec()
	ch, err := NewChannel(spec)
	if err != nil {
		t.Fatal(err)
	}
	chk := NewChecker(spec)
	ch.SetTracer(chk.Observe)

	rng := uint64(7)
	next := func(mod int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(mod))
	}
	issued := 0
	for now := Cycle(0); now < 100_000 && issued < 10_000; now++ {
		rank := next(2)
		bankID := next(spec.Geometry.Banks)
		var cmd Command
		switch next(8) {
		case 0, 1:
			cmd = Act(rank, bankID, next(128), spec.Timing.DefaultClass())
		case 2, 3:
			cmd = Read(rank, bankID, next(spec.Geometry.Columns))
		case 4, 5:
			cmd = Write(rank, bankID, next(spec.Geometry.Columns))
		case 6:
			cmd = Pre(rank, bankID)
		default:
			cmd = Refresh(rank)
		}
		if ch.CanIssue(cmd, now) {
			ch.Issue(cmd, now)
			issued++
		}
	}
	if issued < 500 {
		t.Fatalf("soak issued only %d commands", issued)
	}
	if v := chk.Violations(); len(v) != 0 {
		t.Errorf("%d violations, first: %s", len(v), v[0])
	}
	// Both ranks must have seen refreshes independently.
	if ch.Counts().REF == 0 {
		t.Error("no refreshes in soak")
	}
}
