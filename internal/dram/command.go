package dram

import "fmt"

// CommandKind enumerates the DDR3 commands the controller can issue.
type CommandKind uint8

const (
	// CmdACT opens (activates) a row in a bank.
	CmdACT CommandKind = iota
	// CmdPRE closes (precharges) a bank.
	CmdPRE
	// CmdRD reads one cache line (a burst) from the open row.
	CmdRD
	// CmdWR writes one cache line (a burst) to the open row.
	CmdWR
	// CmdREF refreshes a rank; requires all banks of the rank precharged.
	CmdREF

	numCommandKinds
)

// String implements fmt.Stringer.
func (k CommandKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdREF:
		return "REF"
	default:
		return fmt.Sprintf("CommandKind(%d)", uint8(k))
	}
}

// Command is one DDR3 command addressed to a channel's device.
//
// Rank/Bank/Row/Col are meaningful per kind: ACT uses Rank,Bank,Row;
// PRE uses Rank,Bank; RD/WR use Rank,Bank,Col; REF uses Rank only.
type Command struct {
	Kind CommandKind
	Rank int
	Bank int
	Row  int
	Col  int

	// Class is the activation timing class; only meaningful for ACT.
	Class TimingClass
}

// String implements fmt.Stringer.
func (c Command) String() string {
	switch c.Kind {
	case CmdACT:
		return fmt.Sprintf("ACT r%d b%d row%d (tRCD=%d tRAS=%d)",
			c.Rank, c.Bank, c.Row, c.Class.RCD, c.Class.RAS)
	case CmdPRE:
		return fmt.Sprintf("PRE r%d b%d", c.Rank, c.Bank)
	case CmdRD:
		return fmt.Sprintf("RD r%d b%d col%d", c.Rank, c.Bank, c.Col)
	case CmdWR:
		return fmt.Sprintf("WR r%d b%d col%d", c.Rank, c.Bank, c.Col)
	case CmdREF:
		return fmt.Sprintf("REF r%d", c.Rank)
	default:
		return c.Kind.String()
	}
}

// Act builds an ACT command.
func Act(rank, bank, row int, class TimingClass) Command {
	return Command{Kind: CmdACT, Rank: rank, Bank: bank, Row: row, Class: class}
}

// Pre builds a PRE command.
func Pre(rank, bank int) Command {
	return Command{Kind: CmdPRE, Rank: rank, Bank: bank}
}

// Read builds a RD command.
func Read(rank, bank, col int) Command {
	return Command{Kind: CmdRD, Rank: rank, Bank: bank, Col: col}
}

// Write builds a WR command.
func Write(rank, bank, col int) Command {
	return Command{Kind: CmdWR, Rank: rank, Bank: bank, Col: col}
}

// Refresh builds a REF command.
func Refresh(rank int) Command {
	return Command{Kind: CmdREF, Rank: rank}
}
