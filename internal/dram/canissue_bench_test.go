package dram

import "testing"

// BenchmarkChannelCanIssue measures command-legality checks on a busy
// two-rank channel: the mix probes every command kind against state with
// open rows, recent columns, and a loaded tFAW window, so each check
// exercises the full register set.
func BenchmarkChannelCanIssue(b *testing.B) {
	spec := twoRankSpec()
	ch, err := NewChannel(spec)
	if err != nil {
		b.Fatal(err)
	}
	cls := spec.Timing.DefaultClass()
	// Open a few rows and issue columns to spread state over the
	// registers.
	now := Cycle(0)
	for _, cmd := range []Command{
		Act(0, 0, 5, cls), Act(0, 1, 9, cls), Act(1, 0, 3, cls), Act(1, 2, 7, cls),
	} {
		for !ch.CanIssue(cmd, now) {
			now++
		}
		ch.Issue(cmd, now)
	}
	rd := Read(0, 0, 4)
	for !ch.CanIssue(rd, now) {
		now++
	}
	ch.Issue(rd, now)

	probes := []Command{
		Read(0, 0, 1), Write(0, 1, 2), Act(0, 3, 11, cls), Act(1, 1, 6, cls),
		Pre(0, 0), Pre(1, 0), Read(1, 0, 3), Refresh(1),
	}
	b.ResetTimer()
	sink := false
	for i := 0; i < b.N; i++ {
		sink = ch.CanIssue(probes[i&7], now+Cycle(i&15))
	}
	_ = sink
}

// BenchmarkChannelNextTimingExpiry measures the wake-up bound query on
// the same busy state (cached between issues; the first query after an
// issue pays the register-file scan).
func BenchmarkChannelNextTimingExpiry(b *testing.B) {
	spec := twoRankSpec()
	ch, err := NewChannel(spec)
	if err != nil {
		b.Fatal(err)
	}
	cls := spec.Timing.DefaultClass()
	now := Cycle(0)
	for _, cmd := range []Command{Act(0, 0, 5, cls), Act(1, 0, 3, cls)} {
		for !ch.CanIssue(cmd, now) {
			now++
		}
		ch.Issue(cmd, now)
	}
	b.ResetTimer()
	var sink Cycle
	for i := 0; i < b.N; i++ {
		sink = ch.NextTimingExpiry(now)
	}
	_ = sink
}
