package dram

// rank tracks the rank-level DDR3 constraints:
//
//	ACT -> ACT (different banks)  tRRD, and at most 4 ACTs per tFAW
//	RD/WR -> RD/WR (any bank)     tCCD, plus WTR/RTW bus-turnaround
//	REF                           all banks precharged; busy for tRFC
type rank struct {
	banks []bank

	nextACT Cycle // earliest next ACT to any bank of this rank (tRRD/tFAW/tRFC)
	nextRD  Cycle // earliest next RD command to this rank
	nextWR  Cycle // earliest next WR command to this rank
	nextREF Cycle // earliest next REF (after tRFC of previous, tRC of ACTs...)

	// actWindow holds the issue times of the four most recent ACTs, for
	// the tFAW sliding-window constraint. actWindowLen counts valid
	// entries; the oldest entry is at index 0.
	actWindow    [4]Cycle
	actWindowLen int

	refreshUntil Cycle // rank is busy refreshing until this cycle

	// Occupancy accounting for the power model: cycles with at least one
	// bank active vs all banks precharged, plus refresh-busy cycles.
	openBanks       int
	lastEdge        Cycle
	activeCycles    Cycle
	refreshCycles   Cycle
	inRefreshWindow bool
}

func newRank(banks int) rank {
	return rank{banks: make([]bank, banks)}
}

// settle closes out an elapsed refresh window and integrates the
// background-state accounting up to now.
func (r *rank) settle(now Cycle) {
	if r.inRefreshWindow && now >= r.refreshUntil {
		r.accountTo(r.refreshUntil)
		r.inRefreshWindow = false
	}
	r.accountTo(now)
}

// accountTo integrates the background-state accounting up to now.
func (r *rank) accountTo(now Cycle) {
	if now <= r.lastEdge {
		return
	}
	dt := now - r.lastEdge
	if r.inRefreshWindow {
		r.refreshCycles += dt
	} else if r.openBanks > 0 {
		r.activeCycles += dt
	}
	r.lastEdge = now
}

func (r *rank) allPrecharged() bool {
	for i := range r.banks {
		if r.banks[i].state != BankPrecharged {
			return false
		}
	}
	return true
}

func (r *rank) refreshing(now Cycle) bool { return now < r.refreshUntil }

func (r *rank) canACT(now Cycle) bool {
	if r.refreshing(now) || now < r.nextACT {
		return false
	}
	if r.actWindowLen == 4 && now < r.actWindow[0] {
		return false
	}
	return true
}

func (r *rank) canREF(now Cycle) bool {
	if r.refreshing(now) || now < r.nextREF || !r.allPrecharged() {
		return false
	}
	// Refresh activates rows internally: every bank must be past its
	// precharge (tRP) and activate (tRC) windows, like an ACT would be.
	for i := range r.banks {
		if now < r.banks[i].nextACT {
			return false
		}
	}
	return true
}

func (r *rank) applyACT(now Cycle, t Timing) {
	r.nextACT = maxCycle(r.nextACT, now+Cycle(t.RRD))
	// Slide the tFAW window: the entry that falls out constrained us up
	// to now; the new ACT's window expires at now+tFAW.
	if r.actWindowLen == 4 {
		copy(r.actWindow[:], r.actWindow[1:])
		r.actWindow[3] = now + Cycle(t.FAW)
	} else {
		r.actWindow[r.actWindowLen] = now + Cycle(t.FAW)
		r.actWindowLen++
	}
}

func (r *rank) applyRD(now Cycle, t Timing) {
	r.nextRD = maxCycle(r.nextRD, now+Cycle(t.CCD))
	r.nextWR = maxCycle(r.nextWR, now+Cycle(t.RTW))
}

func (r *rank) applyWR(now Cycle, t Timing) {
	r.nextWR = maxCycle(r.nextWR, now+Cycle(t.CCD))
	r.nextRD = maxCycle(r.nextRD, now+Cycle(t.CWL+t.BL+t.WTR))
}

func (r *rank) applyREF(now Cycle, t Timing) {
	r.refreshUntil = now + Cycle(t.RFC)
	r.nextACT = maxCycle(r.nextACT, r.refreshUntil)
	r.nextRD = maxCycle(r.nextRD, r.refreshUntil)
	r.nextWR = maxCycle(r.nextWR, r.refreshUntil)
	r.nextREF = r.refreshUntil
}
