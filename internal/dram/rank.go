package dram

// rank tracks the rank-level DDR3 constraints with one next-allowed
// register per command kind, each folded to the exact legality flip so
// every rank check is a single comparison:
//
//	nextACT  ACT -> ACT across banks: tRRD spacing, the tFAW sliding
//	         window head (folded in whenever the window is full), and
//	         tRFC refresh busy
//	nextRD   RD/WR -> RD (any bank): tCCD, WTR turnaround, tRFC
//	nextWR   RD/WR -> WR: tCCD, RTW turnaround, tRFC
//	nextREF  REF spacing (tRFC of the previous REF); REF additionally
//	         requires every bank precharged and past its own ACT window,
//	         tracked by openBanks and the running maxBankNextACT
type rank struct {
	banks []bank

	nextACT Cycle // earliest next ACT to any bank of this rank
	nextRD  Cycle // earliest next RD command to this rank
	nextWR  Cycle // earliest next WR command to this rank
	nextREF Cycle // earliest next REF (after tRFC of the previous)

	// maxBankNextACT is the running maximum of the banks' nextACT
	// registers. Bank registers only move forward, so maintaining the
	// maximum at update time keeps REF legality (every bank past its
	// precharge and activate windows) an O(1) comparison.
	maxBankNextACT Cycle

	// actWindow holds the issue times of the four most recent ACTs, for
	// the tFAW sliding-window constraint. actWindowLen counts valid
	// entries; the oldest entry is at index 0.
	actWindow    [4]Cycle
	actWindowLen int

	refreshUntil Cycle // rank is busy refreshing until this cycle

	// Occupancy accounting for the power model: cycles with at least one
	// bank active vs all banks precharged, plus refresh-busy cycles.
	openBanks       int
	lastEdge        Cycle
	activeCycles    Cycle
	refreshCycles   Cycle
	inRefreshWindow bool
}

func newRank(banks int) rank {
	return rank{banks: make([]bank, banks)}
}

// settle closes out an elapsed refresh window and integrates the
// background-state accounting up to now.
func (r *rank) settle(now Cycle) {
	if r.inRefreshWindow && now >= r.refreshUntil {
		r.accountTo(r.refreshUntil)
		r.inRefreshWindow = false
	}
	r.accountTo(now)
}

// accountTo integrates the background-state accounting up to now.
func (r *rank) accountTo(now Cycle) {
	if now <= r.lastEdge {
		return
	}
	dt := now - r.lastEdge
	if r.inRefreshWindow {
		r.refreshCycles += dt
	} else if r.openBanks > 0 {
		r.activeCycles += dt
	}
	r.lastEdge = now
}

func (r *rank) allPrecharged() bool { return r.openBanks == 0 }

func (r *rank) refreshing(now Cycle) bool { return now < r.refreshUntil }

// canACT is a single comparison: tRRD, the tFAW window head, and tRFC
// are all folded into nextACT at apply time.
func (r *rank) canACT(now Cycle) bool { return now >= r.nextACT }

// canREF: REF spacing plus "refresh activates rows internally": every
// bank must be precharged and past its precharge (tRP) and activate
// (tRC) windows, like an ACT would be. Both are O(1) reads thanks to
// openBanks and the running maxBankNextACT.
func (r *rank) canREF(now Cycle) bool {
	return r.openBanks == 0 && now >= r.nextREF && now >= r.maxBankNextACT
}

// noteBankACT folds a bank's advanced nextACT register into the running
// rank maximum. Call after every bank nextACT update (ACT and PRE).
func (r *rank) noteBankACT(at Cycle) {
	if at > r.maxBankNextACT {
		r.maxBankNextACT = at
	}
}

func (r *rank) applyACT(now Cycle, tt *timingTable) {
	r.nextACT = maxCycle(r.nextACT, now+tt.rrd)
	// Slide the tFAW window; once it is full, the oldest entry's expiry
	// bounds the next ACT and is folded straight into nextACT, so the
	// register is the exact legality flip.
	if r.actWindowLen == 4 {
		copy(r.actWindow[:], r.actWindow[1:])
		r.actWindow[3] = now + tt.faw
	} else {
		r.actWindow[r.actWindowLen] = now + tt.faw
		r.actWindowLen++
	}
	if r.actWindowLen == 4 {
		r.nextACT = maxCycle(r.nextACT, r.actWindow[0])
	}
}

func (r *rank) applyRD(now Cycle, tt *timingTable) {
	r.nextRD = maxCycle(r.nextRD, now+tt.ccd)
	r.nextWR = maxCycle(r.nextWR, now+tt.rtw)
}

func (r *rank) applyWR(now Cycle, tt *timingTable) {
	r.nextWR = maxCycle(r.nextWR, now+tt.ccd)
	r.nextRD = maxCycle(r.nextRD, now+tt.wrToRd)
}

func (r *rank) applyREF(now Cycle, tt *timingTable) {
	r.refreshUntil = now + tt.rfc
	r.nextACT = maxCycle(r.nextACT, r.refreshUntil)
	r.nextRD = maxCycle(r.nextRD, r.refreshUntil)
	r.nextWR = maxCycle(r.nextWR, r.refreshUntil)
	r.nextREF = r.refreshUntil
}
