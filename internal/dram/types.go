// Package dram implements a cycle-accurate DDR3-style DRAM device timing
// model: geometry, timing parameters, per-bank state machines, and the
// rank/channel-level constraints (tRRD, tFAW, tCCD, tWTR, data-bus
// occupancy, refresh) that govern when each command may legally issue.
//
// The model corresponds to the DRAM substrate used by the ChargeCache
// paper (Ramulator's DDR3 model, HPCA 2016, Table 1). Time is measured in
// DRAM bus cycles (tCK = 1.25 ns for DDR3-1600). The memory controller
// (package memctrl) drives this model by asking CanIssue and then Issue
// for concrete commands.
//
// The one deliberate extension over a stock DDR3 model is that every ACT
// carries a TimingClass: the pair (tRCD, tRAS) to apply to that
// activation. ChargeCache, NUAT and LL-DRAM all work by selecting a
// lowered TimingClass for activations of highly-charged rows; the rest of
// the protocol timing is identical for every class.
package dram

import "fmt"

// Cycle is a point in time or a duration, measured in DRAM bus cycles.
type Cycle int64

// Geometry describes the physical organization of one memory system.
type Geometry struct {
	Channels int // independent channels (each with its own bus)
	Ranks    int // ranks per channel
	Banks    int // banks per rank
	Rows     int // rows per bank
	Columns  int // cache lines per row (row buffer bytes / line bytes)

	LineBytes int // bytes per column access (one cache line)
}

// Validate reports whether the geometry is internally consistent.
func (g Geometry) Validate() error {
	check := func(name string, v int) error {
		if v <= 0 {
			return fmt.Errorf("dram: geometry %s must be positive, got %d", name, v)
		}
		if v&(v-1) != 0 {
			return fmt.Errorf("dram: geometry %s must be a power of two, got %d", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Channels", g.Channels},
		{"Ranks", g.Ranks},
		{"Banks", g.Banks},
		{"Rows", g.Rows},
		{"Columns", g.Columns},
		{"LineBytes", g.LineBytes},
	} {
		if err := check(f.name, f.v); err != nil {
			return err
		}
	}
	return nil
}

// RowBufferBytes returns the size of one row buffer.
func (g Geometry) RowBufferBytes() int { return g.Columns * g.LineBytes }

// TotalBytes returns the capacity of the whole memory system.
func (g Geometry) TotalBytes() uint64 {
	return uint64(g.Channels) * uint64(g.Ranks) * uint64(g.Banks) *
		uint64(g.Rows) * uint64(g.Columns) * uint64(g.LineBytes)
}

// BanksPerChannel returns the number of banks visible to one channel's
// controller (ranks x banks).
func (g Geometry) BanksPerChannel() int { return g.Ranks * g.Banks }

// Timing holds the DDR3 timing parameters, in bus cycles.
//
// The names follow the JEDEC / Micron datasheet convention without the
// lowercase t prefix (RCD is tRCD and so on).
type Timing struct {
	RCD int // ACT to internal RD/WR delay
	RAS int // ACT to PRE delay
	RP  int // PRE to ACT delay
	RC  int // ACT to ACT delay, same bank (usually RAS+RP)

	CL  int // RD to first data
	CWL int // WR to first data
	BL  int // burst length, in bus cycles of data transfer (BL8 = 4)

	CCD int // column command to column command, same rank
	RRD int // ACT to ACT, different banks of same rank
	FAW int // four-activate window, per rank

	RTP int // RD to PRE, same bank
	WR  int // write recovery: end of write data to PRE, same bank
	WTR int // end of write data to RD, same rank
	RTW int // RD to WR command spacing, same rank (derived bus turnaround)

	RTRS int // rank-to-rank data bus switch penalty

	RFC  int // refresh cycle time
	REFI int // average periodic refresh interval

	// RetentionWindow is the worst-case time a cell must retain data
	// between refreshes (64 ms for DDR3), in bus cycles. The refresh
	// engine walks all rows once per window; the circuit model uses it as
	// the worst-case decay duration that baseline tRCD/tRAS must cover.
	RetentionWindow Cycle

	// RCFromClass, when true, derives the same-bank ACT-to-ACT window of
	// each activation from its timing class (class tRAS + tRP, capped at
	// the spec tRC): tRC is restore-bounded, so an activation of a
	// highly-charged row that restores early also permits the next
	// activation early. When false, the spec tRC applies to every class
	// (the conservative reading; kept as an ablation).
	RCFromClass bool
}

// Validate reports whether the timing parameters are usable.
func (t Timing) Validate() error {
	type field struct {
		name string
		v    int
	}
	for _, f := range []field{
		{"RCD", t.RCD}, {"RAS", t.RAS}, {"RP", t.RP}, {"RC", t.RC},
		{"CL", t.CL}, {"CWL", t.CWL}, {"BL", t.BL},
		{"CCD", t.CCD}, {"RRD", t.RRD}, {"FAW", t.FAW},
		{"RTP", t.RTP}, {"WR", t.WR}, {"WTR", t.WTR}, {"RTW", t.RTW},
		{"RFC", t.RFC}, {"REFI", t.REFI},
	} {
		if f.v <= 0 {
			return fmt.Errorf("dram: timing %s must be positive, got %d", f.name, f.v)
		}
	}
	if t.RTRS < 0 {
		return fmt.Errorf("dram: timing RTRS must be non-negative, got %d", t.RTRS)
	}
	if t.RC < t.RAS+t.RP {
		return fmt.Errorf("dram: tRC (%d) must be >= tRAS+tRP (%d)", t.RC, t.RAS+t.RP)
	}
	if t.RetentionWindow <= 0 {
		return fmt.Errorf("dram: RetentionWindow must be positive, got %d", t.RetentionWindow)
	}
	return nil
}

// TimingClass is the pair of activation timings applied to a single ACT
// command. The baseline class uses the spec tRCD/tRAS; mechanisms such as
// ChargeCache substitute a lowered class for highly-charged rows.
type TimingClass struct {
	RCD int
	RAS int
}

// DefaultClass returns the specification timing class.
func (t Timing) DefaultClass() TimingClass { return TimingClass{RCD: t.RCD, RAS: t.RAS} }

// Spec bundles geometry and timing with the clock.
type Spec struct {
	Geometry Geometry
	Timing   Timing

	// BusMHz is the bus clock frequency (data rate is 2x). tCK in
	// nanoseconds is 1000/BusMHz.
	BusMHz int
}

// Validate checks the whole spec.
func (s Spec) Validate() error {
	if err := s.Geometry.Validate(); err != nil {
		return err
	}
	if err := s.Timing.Validate(); err != nil {
		return err
	}
	if s.BusMHz <= 0 {
		return fmt.Errorf("dram: BusMHz must be positive, got %d", s.BusMHz)
	}
	return nil
}

// CyclesFromNanos converts a duration in nanoseconds to bus cycles,
// rounding up (timing parameters are always conservative).
func (s Spec) CyclesFromNanos(ns float64) int {
	tck := 1000.0 / float64(s.BusMHz)
	n := int(ns / tck)
	if float64(n)*tck < ns-1e-9 {
		n++
	}
	return n
}

// NanosFromCycles converts bus cycles to nanoseconds.
func (s Spec) NanosFromCycles(c Cycle) float64 {
	return float64(c) * 1000.0 / float64(s.BusMHz)
}
