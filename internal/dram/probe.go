package dram

// CommandProbe observes every command a channel issues, for the opt-in
// perf-analyzer (internal/analysis). It is distinct from the tracer
// hook (SetTracer, used by the protocol checker) so instrumentation and
// checking can coexist.
//
// Implementations must only observe: the channel calls the probe with
// pre-apply register state and ignores anything it does. For ACT
// commands, fawStall is the number of cycles the rank's tFAW window
// head extended beyond the bank's own tRC/tRP readiness (0 when the
// window was not full or not binding) — a deterministic attribution of
// four-activate-window pressure read off the legality registers — and
// fast reports that the command carries a lowered timing class. Both
// are zero/false for every other command kind.
type CommandProbe interface {
	ObserveCommand(cmd Command, now, fawStall Cycle, fast bool)
}

// SetProbe installs p to observe every issued command (nil removes it).
// The probe costs one nil check per issue when absent.
func (c *Channel) SetProbe(p CommandProbe) { c.probe = p }

// observe fires the command probe with the pre-apply stall attribution
// for ACTs. Called from Issue before any register is advanced.
//
//ccsim:zeroalloc
func (c *Channel) observe(cmd Command, now Cycle) {
	var stall Cycle
	fast := false
	if cmd.Kind == CmdACT {
		r := &c.ranks[cmd.Rank]
		if r.actWindowLen == 4 {
			if head := r.actWindow[0]; head > r.banks[cmd.Bank].nextACT {
				stall = head - r.banks[cmd.Bank].nextACT
			}
		}
		fast = Cycle(cmd.Class.RCD) < c.tt.rcd || Cycle(cmd.Class.RAS) < c.tt.ras
	}
	c.probe.ObserveCommand(cmd, now, stall, fast)
}
