package dram

import "testing"

// TestNextTimingExpiryCoversCrossRankBusSwitch pins the tRTRS case: a
// read to the rank that last used the data bus becomes legal earlier
// than a read to the other rank, and the expiry scan must not sleep
// past the other rank's flip.
func TestNextTimingExpiryCoversCrossRankBusSwitch(t *testing.T) {
	spec := twoRankSpec()
	ch, err := NewChannel(spec)
	if err != nil {
		t.Fatal(err)
	}
	tm := spec.Timing
	cls := tm.DefaultClass()
	ch.Issue(Act(0, 0, 1, cls), 0)
	ch.Issue(Act(1, 0, 1, cls), 1)
	rd0 := Cycle(tm.RCD)
	ch.Issue(Read(0, 0, 0), rd0)

	// The cross-rank read flips legal at rd0 + BL + RTRS.
	crossOK := rd0 + Cycle(tm.BL) + Cycle(tm.RTRS)
	for now := rd0; now < crossOK; now++ {
		if ch.CanIssue(Read(1, 0, 0), now) {
			t.Fatalf("cross-rank read already legal at %d", now)
		}
		e := ch.NextTimingExpiry(now)
		if e > crossOK {
			t.Fatalf("NextTimingExpiry(%d) = %d sleeps past cross-rank flip %d", now, e, crossOK)
		}
	}
	if !ch.CanIssue(Read(1, 0, 0), crossOK) {
		t.Fatalf("cross-rank read not legal at flip %d", crossOK)
	}
}

// TestNextTimingExpiryIsConservative soaks a two-rank channel with
// random commands and checks the scan's core contract after every
// issue: no command's legality may flip from false to true strictly
// before the reported expiry (legality changes only at enumerated
// register expiries or at issues, and issues are executed events).
func TestNextTimingExpiryIsConservative(t *testing.T) {
	spec := twoRankSpec()
	ch, err := NewChannel(spec)
	if err != nil {
		t.Fatal(err)
	}
	cls := spec.Timing.DefaultClass()
	rng := uint64(41)
	next := func(mod int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(mod))
	}
	// candidates samples the command space.
	candidates := func() []Command {
		var cmds []Command
		for r := 0; r < spec.Geometry.Ranks; r++ {
			cmds = append(cmds, Refresh(r))
			for b := 0; b < spec.Geometry.Banks; b += 3 {
				cmds = append(cmds,
					Act(r, b, 5, cls), Pre(r, b), Read(r, b, 2), Write(r, b, 2))
			}
		}
		return cmds
	}()

	now := Cycle(0)
	for i := 0; i < 3000; i++ {
		// Try to issue something random to churn the state.
		cmd := candidates[next(len(candidates))]
		if ch.CanIssue(cmd, now) {
			ch.Issue(cmd, now)
		}
		e := ch.NextTimingExpiry(now)
		if e <= now {
			t.Fatalf("step %d: expiry %d not in the future of %d", i, e, now)
		}
		// Sample points strictly before the expiry: every command
		// illegal just after now must still be illegal there.
		probes := []Cycle{now + 1, now + (e-now)/2, e - 1}
		for _, cmd := range candidates {
			if ch.CanIssue(cmd, now+1) {
				continue
			}
			for _, p := range probes {
				if p <= now || p >= e {
					continue
				}
				if ch.CanIssue(cmd, p) {
					t.Fatalf("step %d: %v flips legal at %d, before expiry %d (now %d)",
						i, cmd, p, e, now)
				}
			}
		}
		now += Cycle(1 + next(20))
	}
}
