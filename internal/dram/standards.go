package dram

// Additional DRAM standards (Section 7.2 of the paper): ChargeCache
// applies to any DDR-derived interface that exposes explicit ACT/PRE
// commands. These presets share the DDR3 constraint structure with the
// standard's own parameters; the simulator and mechanisms work on them
// unchanged. (RL-DRAM-style interfaces without ACT/PRE are out of scope,
// exactly as the paper notes.)

// LPDDR31600 returns an LPDDR3-1600 style specification: same data rate
// as DDR3-1600 but mobile-oriented timings (slower core: higher tRCD and
// tRP in nanoseconds) and smaller row buffers (4 KB), per-channel x32.
func LPDDR31600(channels int) Spec {
	return Spec{
		Geometry: Geometry{
			Channels:  channels,
			Ranks:     1,
			Banks:     8,
			Rows:      32 * 1024,
			Columns:   64, // 4 KB row buffer
			LineBytes: 64,
		},
		Timing: Timing{
			RCD: 15, // 18 ns class
			RAS: 34, // 42.5 ns
			RP:  15,
			RC:  49,

			CL:  12,
			CWL: 6,
			BL:  4,

			CCD: 4,
			RRD: 8,
			FAW: 40,

			RTP: 6,
			WR:  12,
			WTR: 6,
			RTW: 12 + 4 + 2 - 6,

			RTRS: 2,

			RFC:  168,  // 210 ns, 4 Gb LPDDR3
			REFI: 3120, // 3.9 us (higher refresh rate)

			RetentionWindow: 32 * msCycles800, // 32 ms retention class
			RCFromClass:     true,
		},
		BusMHz: 800,
	}
}

// DDR31600LowVoltage returns a DDR3L-1600 style specification: identical
// timing structure to DDR3-1600 with slightly relaxed activation timings
// (the 1.35 V part's slower sensing).
func DDR31600LowVoltage(channels int) Spec {
	s := DDR31600(channels)
	s.Timing.RCD = 12 // 15 ns class
	s.Timing.RP = 12
	s.Timing.RAS = 30
	s.Timing.RC = 42
	return s
}
