package dram

import "testing"

// scanOracle re-derives command legality the way the pre-register-file
// code did: by scanning the full command history and checking every DDR3
// constraint from first principles on each query. It shares no state
// with the incremental next-allowed registers, so agreement across
// randomized command sequences pins the folded registers (tFAW window
// head and refresh folded into rank ACT, refresh into the column and
// REF registers) to the scan-derived answers.
type scanOracle struct {
	spec Spec

	// Per (rank, bank), index rank*banks+bank. Times are issue cycles;
	// the far-negative sentinel means "never".
	lastACT  []Cycle
	lastPRE  []Cycle
	lastRD   []Cycle
	lastWR   []Cycle
	openRow  []int
	isOpen   []bool
	lastRCD  []int
	lastRAS  []int
	rankACTs [][]Cycle // per rank, all ACT issue times (never trimmed)
	lastREF  []Cycle
	rankRD   []Cycle
	rankWR   []Cycle

	busFree Cycle
	busRank int
}

const oracleNever = Cycle(-1) << 40

func newScanOracle(spec Spec) *scanOracle {
	nb := spec.Geometry.Ranks * spec.Geometry.Banks
	nr := spec.Geometry.Ranks
	never := func(n int) []Cycle {
		s := make([]Cycle, n)
		for i := range s {
			s[i] = oracleNever
		}
		return s
	}
	return &scanOracle{
		spec:    spec,
		lastACT: never(nb), lastPRE: never(nb), lastRD: never(nb), lastWR: never(nb),
		openRow: make([]int, nb), isOpen: make([]bool, nb),
		lastRCD: make([]int, nb), lastRAS: make([]int, nb),
		rankACTs: make([][]Cycle, nr),
		lastREF:  never(nr), rankRD: never(nr), rankWR: never(nr),
		busRank: -1,
	}
}

func (o *scanOracle) bankIdx(cmd Command) int {
	return cmd.Rank*o.spec.Geometry.Banks + cmd.Bank
}

// refreshing reports whether the rank is inside a tRFC window at now.
func (o *scanOracle) refreshing(rank int, now Cycle) bool {
	return o.lastREF[rank] != oracleNever && now < o.lastREF[rank]+Cycle(o.spec.Timing.RFC)
}

// minRC is the ACT->ACT window implied by the previous ACT's class.
func (o *scanOracle) minRC(b int) Cycle {
	t := o.spec.Timing
	if o.lastACT[b] == oracleNever {
		return 0
	}
	if t.RCFromClass {
		rc := o.lastRAS[b] + t.RP
		if rc > t.RC {
			rc = t.RC
		}
		return Cycle(rc)
	}
	return Cycle(t.RC)
}

func (o *scanOracle) busLegal(start Cycle, rank int) bool {
	free := o.busFree
	if o.busRank >= 0 && o.busRank != rank {
		free += Cycle(o.spec.Timing.RTRS)
	}
	return start >= free
}

// legal answers CanIssue from the history scan.
func (o *scanOracle) legal(cmd Command, now Cycle) bool {
	t := o.spec.Timing
	b := o.bankIdx(cmd)
	switch cmd.Kind {
	case CmdACT:
		if o.isOpen[b] || o.refreshing(cmd.Rank, now) {
			return false
		}
		if o.lastACT[b] != oracleNever && now-o.lastACT[b] < o.minRC(b) {
			return false
		}
		if o.lastPRE[b] != oracleNever && now-o.lastPRE[b] < Cycle(t.RP) {
			return false
		}
		recent := 0
		for _, at := range o.rankACTs[cmd.Rank] {
			if now-at < Cycle(t.RRD) {
				return false
			}
			if now-at < Cycle(t.FAW) {
				recent++
			}
		}
		return recent < 4
	case CmdPRE:
		if !o.isOpen[b] || o.refreshing(cmd.Rank, now) {
			return false
		}
		if now-o.lastACT[b] < Cycle(o.lastRAS[b]) {
			return false
		}
		if o.lastRD[b] != oracleNever && now-o.lastRD[b] < Cycle(t.RTP) {
			return false
		}
		if o.lastWR[b] != oracleNever && now-o.lastWR[b] < Cycle(t.CWL+t.BL+t.WR) {
			return false
		}
		return true
	case CmdRD, CmdWR:
		if !o.isOpen[b] || o.refreshing(cmd.Rank, now) {
			return false
		}
		if now-o.lastACT[b] < Cycle(o.lastRCD[b]) {
			return false
		}
		if cmd.Kind == CmdRD {
			if o.rankRD[cmd.Rank] != oracleNever && now-o.rankRD[cmd.Rank] < Cycle(t.CCD) {
				return false
			}
			if o.rankWR[cmd.Rank] != oracleNever && now-o.rankWR[cmd.Rank] < Cycle(t.CWL+t.BL+t.WTR) {
				return false
			}
			return o.busLegal(now+Cycle(t.CL), cmd.Rank)
		}
		if o.rankWR[cmd.Rank] != oracleNever && now-o.rankWR[cmd.Rank] < Cycle(t.CCD) {
			return false
		}
		if o.rankRD[cmd.Rank] != oracleNever && now-o.rankRD[cmd.Rank] < Cycle(t.RTW) {
			return false
		}
		return o.busLegal(now+Cycle(t.CWL), cmd.Rank)
	case CmdREF:
		if o.refreshing(cmd.Rank, now) {
			return false
		}
		if o.lastREF[cmd.Rank] != oracleNever && now-o.lastREF[cmd.Rank] < Cycle(t.RFC) {
			return false
		}
		for bank := 0; bank < o.spec.Geometry.Banks; bank++ {
			i := cmd.Rank*o.spec.Geometry.Banks + bank
			if o.isOpen[i] {
				return false
			}
			// Like an internal ACT: past tRP of the precharge and the
			// previous ACT's tRC window.
			if o.lastPRE[i] != oracleNever && now-o.lastPRE[i] < Cycle(t.RP) {
				return false
			}
			if o.lastACT[i] != oracleNever && now-o.lastACT[i] < o.minRC(i) {
				return false
			}
		}
		return true
	}
	return false
}

// observe records an issued command.
func (o *scanOracle) observe(cmd Command, now Cycle) {
	t := o.spec.Timing
	b := o.bankIdx(cmd)
	switch cmd.Kind {
	case CmdACT:
		o.lastACT[b] = now
		o.isOpen[b] = true
		o.openRow[b] = cmd.Row
		o.lastRCD[b] = cmd.Class.RCD
		o.lastRAS[b] = cmd.Class.RAS
		o.rankACTs[cmd.Rank] = append(o.rankACTs[cmd.Rank], now)
		// Only the most recent ACTs can constrain tRRD/tFAW (older ones
		// have aged out of both windows by the spacing they imposed).
		if n := len(o.rankACTs[cmd.Rank]); n > 8 {
			o.rankACTs[cmd.Rank] = o.rankACTs[cmd.Rank][n-8:]
		}
	case CmdPRE:
		o.lastPRE[b] = now
		o.isOpen[b] = false
	case CmdRD:
		o.lastRD[b] = now
		o.rankRD[cmd.Rank] = now
		o.busFree = now + Cycle(t.CL+t.BL)
		o.busRank = cmd.Rank
	case CmdWR:
		o.lastWR[b] = now
		o.rankWR[cmd.Rank] = now
		o.busFree = now + Cycle(t.CWL+t.BL)
		o.busRank = cmd.Rank
	case CmdREF:
		o.lastREF[cmd.Rank] = now
	}
}

// earliestActivate derives the bank's same-bank ACT bound by scanning
// forward from now until the oracle says the ACT is bank-legal,
// ignoring rank-level and refresh constraints (EarliestActivate's
// contract).
func (o *scanOracle) earliestActivate(rank, bank int, now Cycle) Cycle {
	t := o.spec.Timing
	b := rank*o.spec.Geometry.Banks + bank
	at := now
	if o.lastACT[b] != oracleNever && o.lastACT[b]+o.minRC(b) > at {
		at = o.lastACT[b] + o.minRC(b)
	}
	if o.lastPRE[b] != oracleNever && o.lastPRE[b]+Cycle(t.RP) > at {
		at = o.lastPRE[b] + Cycle(t.RP)
	}
	return at
}

// TestLegalityMatchesScanOracle drives a two-rank channel with seeded
// random legal command sequences — ACT-heavy, so the tFAW window is
// under constant pressure — and checks, at every step and for every
// command in a sampled command space, that the incrementally maintained
// next-allowed registers give exactly the scan-derived answer.
func TestLegalityMatchesScanOracle(t *testing.T) {
	for _, seed := range []uint64{3, 17, 4242} {
		spec := twoRankSpec()
		// Shrink tFAW pressure points: a small FAW/RRD ratio makes the
		// four-activate window the binding constraint more often.
		ch, err := NewChannel(spec)
		if err != nil {
			t.Fatal(err)
		}
		oracle := newScanOracle(spec)
		rng := seed
		next := func(mod int) int {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return int(rng % uint64(mod))
		}
		cls := spec.Timing.DefaultClass()
		fast := TimingClass{RCD: spec.Timing.RCD - 4, RAS: spec.Timing.RAS - 8}

		// candidates samples the command space: every bank gets ACT/PRE
		// plus column commands; REF per rank.
		var candidates []Command
		for r := 0; r < spec.Geometry.Ranks; r++ {
			candidates = append(candidates, Refresh(r))
			for b := 0; b < spec.Geometry.Banks; b++ {
				candidates = append(candidates,
					Act(r, b, (r+b)%spec.Geometry.Rows, cls),
					Act(r, b, (r+b+1)%spec.Geometry.Rows, fast),
					Pre(r, b),
					Read(r, b, b%spec.Geometry.Columns),
					Write(r, b, (b+1)%spec.Geometry.Columns))
			}
		}

		now := Cycle(0)
		issued := 0
		for step := 0; step < 4000; step++ {
			// Full agreement over the sampled command space.
			for _, cmd := range candidates {
				got := ch.CanIssue(cmd, now)
				want := oracle.legal(cmd, now)
				if got != want {
					t.Fatalf("seed %d step %d cycle %d: CanIssue(%v) = %v, oracle says %v",
						seed, step, now, cmd, got, want)
				}
			}
			for r := 0; r < spec.Geometry.Ranks; r++ {
				for b := 0; b < spec.Geometry.Banks; b++ {
					if got, want := ch.EarliestActivate(r, b), oracle.earliestActivate(r, b, 0); got != want {
						t.Fatalf("seed %d step %d: EarliestActivate(%d,%d) = %d, oracle %d",
							seed, step, r, b, got, want)
					}
				}
			}
			// Issue a random legal command to churn the state, biased
			// toward ACTs to stress tFAW.
			tried := 0
			for ; tried < 12; tried++ {
				cmd := candidates[next(len(candidates))]
				if cmd.Kind != CmdACT && next(3) == 0 {
					continue // bias toward activates
				}
				if ch.CanIssue(cmd, now) {
					ch.Issue(cmd, now)
					oracle.observe(cmd, now)
					issued++
					break
				}
			}
			// Advance time with small steps so constraint expiries are
			// observed cycle by cycle around their flips.
			now += Cycle(1 + next(4))
		}
		if issued < 500 {
			t.Fatalf("seed %d: only %d commands issued; sequence not exercising the registers", seed, issued)
		}
	}
}
