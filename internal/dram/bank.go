package dram

// BankState is the coarse state of one bank's row buffer.
type BankState uint8

const (
	// BankPrecharged means no row is open.
	BankPrecharged BankState = iota
	// BankActive means a row is open (possibly still within tRCD).
	BankActive
)

// String implements fmt.Stringer.
func (s BankState) String() string {
	if s == BankPrecharged {
		return "precharged"
	}
	return "active"
}

// bank tracks one bank's row-buffer state and, per command kind, the
// earliest cycle at which that command may next be issued to it. The
// registers are maintained incrementally: each Issue advances exactly
// the registers its timing arcs constrain, so legality checks are pure
// field comparisons. The per-bank constraints are exactly the DDR3
// intra-bank ones:
//
//	ACT -> RD/WR   tRCD (from the ACT's timing class)
//	ACT -> PRE     tRAS (from the ACT's timing class)
//	ACT -> ACT     tRC
//	RD  -> PRE     tRTP
//	WR  -> PRE     tCWL + tBL + tWR
//	PRE -> ACT     tRP
type bank struct {
	state BankState
	row   int // open row when state == BankActive

	nextACT Cycle
	nextRD  Cycle
	nextWR  Cycle
	nextPRE Cycle

	// maxReg is the running maximum of the four registers above, so the
	// channel's expiry scan can skip long-idle banks (every register in
	// the past) with one comparison.
	maxReg Cycle

	lastACT      Cycle // issue time of the most recent ACT
	lastACTClass TimingClass
}

func (b *bank) reset() {
	*b = bank{}
}

// openRow returns the open row and whether the bank is active.
func (b *bank) openRow() (int, bool) {
	return b.row, b.state == BankActive
}

func (b *bank) canACT(now Cycle) bool {
	return b.state == BankPrecharged && now >= b.nextACT
}

func (b *bank) canRD(now Cycle) bool {
	return b.state == BankActive && now >= b.nextRD
}

func (b *bank) canWR(now Cycle) bool {
	return b.state == BankActive && now >= b.nextWR
}

func (b *bank) canPRE(now Cycle) bool {
	// Precharging an already-precharged bank is a legal no-op in DDR3,
	// but the controller never needs it; require an open row.
	return b.state == BankActive && now >= b.nextPRE
}

func (b *bank) applyACT(now Cycle, row int, class TimingClass, tt *timingTable) {
	b.state = BankActive
	b.row = row
	b.lastACT = now
	b.lastACTClass = class
	b.nextRD = maxCycle(b.nextRD, now+Cycle(class.RCD))
	b.nextWR = maxCycle(b.nextWR, now+Cycle(class.RCD))
	b.nextPRE = maxCycle(b.nextPRE, now+Cycle(class.RAS))
	rc := tt.rc
	if tt.rcFromClass && Cycle(class.RAS)+tt.rp < rc {
		rc = Cycle(class.RAS) + tt.rp
	}
	b.nextACT = maxCycle(b.nextACT, now+rc)
	b.maxReg = maxCycle(b.maxReg, maxCycle(b.nextACT, maxCycle(b.nextRD, maxCycle(b.nextWR, b.nextPRE))))
}

func (b *bank) applyRD(now Cycle, tt *timingTable) {
	b.nextPRE = maxCycle(b.nextPRE, now+tt.rtp)
	b.maxReg = maxCycle(b.maxReg, b.nextPRE)
}

func (b *bank) applyWR(now Cycle, tt *timingTable) {
	b.nextPRE = maxCycle(b.nextPRE, now+tt.wrToPre)
	b.maxReg = maxCycle(b.maxReg, b.nextPRE)
}

func (b *bank) applyPRE(now Cycle, tt *timingTable) {
	b.state = BankPrecharged
	b.row = 0
	b.nextACT = maxCycle(b.nextACT, now+tt.rp)
	b.maxReg = maxCycle(b.maxReg, b.nextACT)
}

func maxCycle(a, b Cycle) Cycle {
	if a > b {
		return a
	}
	return b
}
