package dram

import "fmt"

// Checker is an independent DDR3 protocol validator: it re-derives every
// inter-command constraint from first principles (its own bookkeeping,
// deliberately structured differently from the bank/rank fast paths) and
// reports a violation for any command that a real device would reject.
// Attach it to a Channel with SetTracer and it validates the full
// command stream; tests use it to cross-check the timing engine against
// arbitrary controller behaviour.
type Checker struct {
	spec Spec

	// Per (rank, bank) command history; index rank*banks+bank.
	lastACT []Cycle
	lastRD  []Cycle
	lastWR  []Cycle
	lastPRE []Cycle
	openRow []int
	isOpen  []bool
	actRCD  []int // tRCD of the class used by the last ACT
	actRAS  []int // tRAS of the class used by the last ACT

	// Per rank.
	rankACTs []([]Cycle) // ACT history for tRRD/tFAW
	lastREF  []Cycle
	rankRD   []Cycle
	rankWR   []Cycle

	violations []string
}

// NewChecker builds a checker for spec.
func NewChecker(spec Spec) *Checker {
	nb := spec.Geometry.Ranks * spec.Geometry.Banks
	nr := spec.Geometry.Ranks
	c := &Checker{
		spec:    spec,
		lastACT: negCycles(nb), lastRD: negCycles(nb), lastWR: negCycles(nb),
		lastPRE: negCycles(nb),
		openRow: make([]int, nb), isOpen: make([]bool, nb),
		actRCD: make([]int, nb), actRAS: make([]int, nb),
		rankACTs: make([][]Cycle, nr),
		lastREF:  negCycles(nr), rankRD: negCycles(nr), rankWR: negCycles(nr),
	}
	return c
}

func negCycles(n int) []Cycle {
	s := make([]Cycle, n)
	for i := range s {
		s[i] = -1 << 40
	}
	return s
}

// Violations returns the violations recorded so far.
func (c *Checker) Violations() []string {
	return append([]string(nil), c.violations...)
}

func (c *Checker) fail(now Cycle, cmd Command, format string, args ...any) {
	c.violations = append(c.violations,
		fmt.Sprintf("cycle %d %v: %s", now, cmd, fmt.Sprintf(format, args...)))
}

// Observe validates one issued command. Call it from a Channel tracer.
func (c *Checker) Observe(cmd Command, now Cycle) {
	t := c.spec.Timing
	b := cmd.Rank*c.spec.Geometry.Banks + cmd.Bank
	switch cmd.Kind {
	case CmdACT:
		if c.isOpen[b] {
			c.fail(now, cmd, "ACT on open bank (row %d)", c.openRow[b])
		}
		if gap := now - c.lastACT[b]; gap < Cycle(c.minRC(b)) {
			c.fail(now, cmd, "tRC violated: gap %d < %d", gap, c.minRC(b))
		}
		if gap := now - c.lastPRE[b]; gap < Cycle(t.RP) {
			c.fail(now, cmd, "tRP violated: gap %d < %d", gap, t.RP)
		}
		for _, prev := range c.rankACTs[cmd.Rank] {
			if gap := now - prev; gap >= 0 && gap < Cycle(t.RRD) {
				c.fail(now, cmd, "tRRD violated: gap %d < %d", gap, t.RRD)
			}
		}
		if n := len(c.rankACTs[cmd.Rank]); n >= 4 {
			if gap := now - c.rankACTs[cmd.Rank][n-4]; gap < Cycle(t.FAW) {
				c.fail(now, cmd, "tFAW violated: 5th ACT %d cycles after 4-back", gap)
			}
		}
		if gap := now - c.lastREF[cmd.Rank]; gap >= 0 && gap < Cycle(t.RFC) {
			c.fail(now, cmd, "tRFC violated: ACT %d after REF", gap)
		}
		c.lastACT[b] = now
		c.isOpen[b] = true
		c.openRow[b] = cmd.Row
		c.actRCD[b] = cmd.Class.RCD
		c.actRAS[b] = cmd.Class.RAS
		c.rankACTs[cmd.Rank] = append(c.rankACTs[cmd.Rank], now)
		if len(c.rankACTs[cmd.Rank]) > 8 {
			c.rankACTs[cmd.Rank] = c.rankACTs[cmd.Rank][1:]
		}

	case CmdRD, CmdWR:
		if !c.isOpen[b] {
			c.fail(now, cmd, "column command on closed bank")
			return
		}
		if gap := now - c.lastACT[b]; gap < Cycle(c.actRCD[b]) {
			c.fail(now, cmd, "tRCD violated: gap %d < %d", gap, c.actRCD[b])
		}
		var colGap Cycle
		if cmd.Kind == CmdRD {
			colGap = now - c.rankRD[cmd.Rank]
		} else {
			colGap = now - c.rankWR[cmd.Rank]
		}
		if colGap >= 0 && colGap < Cycle(t.CCD) {
			c.fail(now, cmd, "tCCD violated: gap %d < %d", colGap, t.CCD)
		}
		if cmd.Kind == CmdRD {
			// Write-to-read: CWL + BL + WTR.
			if gap := now - c.rankWR[cmd.Rank]; gap >= 0 && gap < Cycle(t.CWL+t.BL+t.WTR) {
				c.fail(now, cmd, "tWTR violated: gap %d < %d", gap, t.CWL+t.BL+t.WTR)
			}
			c.rankRD[cmd.Rank] = now
			c.lastRD[b] = now
		} else {
			// Read-to-write turnaround.
			if gap := now - c.rankRD[cmd.Rank]; gap >= 0 && gap < Cycle(t.RTW) {
				c.fail(now, cmd, "tRTW violated: gap %d < %d", gap, t.RTW)
			}
			c.rankWR[cmd.Rank] = now
			c.lastWR[b] = now
		}

	case CmdPRE:
		if !c.isOpen[b] {
			c.fail(now, cmd, "PRE on closed bank")
			return
		}
		if gap := now - c.lastACT[b]; gap < Cycle(c.actRAS[b]) {
			c.fail(now, cmd, "tRAS violated: gap %d < %d", gap, c.actRAS[b])
		}
		if gap := now - c.lastRD[b]; gap >= 0 && gap < Cycle(t.RTP) {
			c.fail(now, cmd, "tRTP violated: gap %d < %d", gap, t.RTP)
		}
		if gap := now - c.lastWR[b]; gap >= 0 && gap < Cycle(t.CWL+t.BL+t.WR) {
			c.fail(now, cmd, "tWR violated: gap %d < %d", gap, t.CWL+t.BL+t.WR)
		}
		c.lastPRE[b] = now
		c.isOpen[b] = false

	case CmdREF:
		for bank := 0; bank < c.spec.Geometry.Banks; bank++ {
			if c.isOpen[cmd.Rank*c.spec.Geometry.Banks+bank] {
				c.fail(now, cmd, "REF with bank %d open", bank)
			}
		}
		if gap := now - c.lastREF[cmd.Rank]; gap >= 0 && gap < Cycle(t.RFC) {
			c.fail(now, cmd, "REF inside previous tRFC: gap %d", gap)
		}
		// REF also requires tRP since the closing precharges.
		for bank := 0; bank < c.spec.Geometry.Banks; bank++ {
			if gap := now - c.lastPRE[cmd.Rank*c.spec.Geometry.Banks+bank]; gap >= 0 && gap < Cycle(t.RP) {
				c.fail(now, cmd, "REF %d cycles after PRE of bank %d", gap, bank)
			}
		}
		c.lastREF[cmd.Rank] = now
	}
}

// minRC returns the ACT-to-ACT minimum implied by the previous ACT's
// class under the spec's tRC policy.
func (c *Checker) minRC(b int) int {
	t := c.spec.Timing
	if c.actRAS[b] == 0 {
		return 0 // no previous ACT
	}
	if t.RCFromClass {
		rc := c.actRAS[b] + t.RP
		if rc > t.RC {
			rc = t.RC
		}
		return rc
	}
	return t.RC
}
