package dram

import (
	"fmt"

	"repro/internal/prof"
)

// CommandCounts tallies issued commands, for statistics and the energy
// model. FastACT counts activations issued with a lowered timing class;
// RASCycles accumulates the tRAS actually applied to each ACT (the energy
// model charges restoration current for exactly that long).
type CommandCounts struct {
	ACT     uint64
	FastACT uint64
	PRE     uint64
	RD      uint64
	WR      uint64
	REF     uint64

	RASCycles uint64
}

// Channel is one DRAM channel: a set of ranks sharing a command/address
// bus and a data bus. It is the unit the memory controller drives.
//
// Command legality is tracked as next-allowed-cycle registers, one per
// (bank|rank, command kind), advanced incrementally at Issue time from
// the precomputed timing table — CanIssue and EarliestActivate are pure
// field comparisons, and NextTimingExpiry is a cached read of the
// register file, invalidated only when a command moves it.
//
// Channel is not safe for concurrent use; the simulator drives each
// channel from a single goroutine.
type Channel struct {
	spec  Spec
	tt    timingTable
	ranks []rank

	// dataBusFree is the first cycle at which a new data burst could
	// start, together with the rank that last used the bus (for tRTRS).
	dataBusFree Cycle
	dataBusRank int

	// expiryCache memoizes NextTimingExpiry between issues; expiryStale
	// marks it invalid after a command moved the registers.
	expiryCache Cycle
	expiryFrom  Cycle
	expiryStale bool

	counts      CommandCounts
	now         Cycle // last issue or sync time, for accounting
	accountBase Cycle // start of the current accounting window

	// tracer, if set, observes every issued command (see SetTracer).
	tracer func(Command, Cycle)

	// probe, if set, receives every issued command with perf-analyzer
	// annotations (see SetProbe in probe.go).
	probe CommandProbe

	// profiler, if set, attributes sampled wall-clock time to command
	// issue (see SetProfiler).
	profiler *prof.Timer
}

// SetTracer installs fn to observe every issued command (protocol
// checking, logging). A nil fn removes the tracer.
func (c *Channel) SetTracer(fn func(Command, Cycle)) { c.tracer = fn }

// SetProfiler installs the sampled phase timer on Issue (nil removes
// it). The disabled path costs one nil check per issued command.
func (c *Channel) SetProfiler(t *prof.Timer) { c.profiler = t }

// NewChannel builds a channel for the given spec. The spec must validate.
func NewChannel(spec Spec) (*Channel, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ch := &Channel{spec: spec, tt: makeTimingTable(spec.Timing), dataBusRank: -1}
	ch.ranks = make([]rank, spec.Geometry.Ranks)
	for i := range ch.ranks {
		ch.ranks[i] = newRank(spec.Geometry.Banks)
	}
	return ch, nil
}

// Spec returns the channel's specification.
func (c *Channel) Spec() Spec { return c.spec }

// Counts returns the commands issued so far.
func (c *Channel) Counts() CommandCounts { return c.counts }

// OpenRow reports the open row in (rank, bank), if any.
func (c *Channel) OpenRow(rankID, bankID int) (row int, open bool) {
	return c.ranks[rankID].banks[bankID].openRow()
}

// BankState returns the state of a bank.
func (c *Channel) BankState(rankID, bankID int) BankState {
	return c.ranks[rankID].banks[bankID].state
}

// EarliestActivate returns the earliest cycle at which the bank itself
// could accept another ACT (the same-bank tRC/tRP bound; rank-level
// constraints excluded). Schedulers use it to avoid precharging a row
// earlier than it can possibly help the next activation.
func (c *Channel) EarliestActivate(rankID, bankID int) Cycle {
	return c.ranks[rankID].banks[bankID].nextACT
}

// Refreshing reports whether the rank is inside a tRFC refresh window.
func (c *Channel) Refreshing(rankID int, now Cycle) bool {
	return c.ranks[rankID].refreshing(now)
}

// AllBanksPrecharged reports whether every bank of the rank is closed.
func (c *Channel) AllBanksPrecharged(rankID int) bool {
	return c.ranks[rankID].allPrecharged()
}

// CanIssue reports whether cmd may legally issue at cycle now. Every
// case is a bounded number of register comparisons: refresh busy is
// folded into the rank registers at REF issue, and the tFAW window head
// into the rank ACT register at ACT issue.
//
//ccsim:zeroalloc
func (c *Channel) CanIssue(cmd Command, now Cycle) bool {
	if cmd.Rank < 0 || cmd.Rank >= len(c.ranks) {
		return false
	}
	r := &c.ranks[cmd.Rank]
	switch cmd.Kind {
	case CmdACT:
		if cmd.Bank < 0 || cmd.Bank >= len(r.banks) ||
			cmd.Row < 0 || cmd.Row >= c.spec.Geometry.Rows {
			return false
		}
		return r.canACT(now) && r.banks[cmd.Bank].canACT(now)
	case CmdPRE:
		if cmd.Bank < 0 || cmd.Bank >= len(r.banks) {
			return false
		}
		return !r.refreshing(now) && r.banks[cmd.Bank].canPRE(now)
	case CmdRD:
		if !c.colInRange(cmd) || now < r.nextRD {
			return false
		}
		return r.banks[cmd.Bank].canRD(now) && c.busFreeFor(now+c.tt.cl, cmd.Rank)
	case CmdWR:
		if !c.colInRange(cmd) || now < r.nextWR {
			return false
		}
		return r.banks[cmd.Bank].canWR(now) && c.busFreeFor(now+c.tt.cwl, cmd.Rank)
	case CmdREF:
		return r.canREF(now)
	default:
		return false
	}
}

// colInRange bounds-checks a column command's coordinates. Refresh busy
// needs no check here: applyREF folds the tRFC window into the rank's
// column registers.
func (c *Channel) colInRange(cmd Command) bool {
	return cmd.Bank >= 0 && cmd.Bank < c.spec.Geometry.Banks &&
		cmd.Col >= 0 && cmd.Col < c.spec.Geometry.Columns
}

// busFreeFor reports whether a data burst starting at start can use the
// data bus, given the previous burst's occupancy and rank switching.
func (c *Channel) busFreeFor(start Cycle, rankID int) bool {
	free := c.dataBusFree
	if c.dataBusRank >= 0 && c.dataBusRank != rankID {
		free += c.tt.rtrs
	}
	return start >= free
}

// Issue applies cmd at cycle now. It panics if the command is illegal;
// callers must gate with CanIssue (an illegal issue is a controller bug,
// not a runtime condition). Each case advances exactly the registers the
// command's timing arcs constrain.
//
//ccsim:zeroalloc
func (c *Channel) Issue(cmd Command, now Cycle) {
	if !c.CanIssue(cmd, now) {
		panic(fmt.Sprintf("dram: illegal %v at cycle %d", cmd, now))
	}
	if c.profiler != nil {
		pt := c.profiler.Begin(prof.Issue)
		defer c.profiler.End(prof.Issue, pt, int64(now))
	}
	if c.tracer != nil {
		c.tracer(cmd, now)
	}
	if c.probe != nil {
		c.observe(cmd, now)
	}
	tt := &c.tt
	r := &c.ranks[cmd.Rank]
	r.settle(now)
	c.now = now
	c.expiryStale = true
	switch cmd.Kind {
	case CmdACT:
		b := &r.banks[cmd.Bank]
		b.applyACT(now, cmd.Row, cmd.Class, tt)
		r.applyACT(now, tt)
		r.noteBankACT(b.nextACT)
		r.openBanks++
		c.counts.ACT++
		c.counts.RASCycles += uint64(cmd.Class.RAS)
		if Cycle(cmd.Class.RCD) < tt.rcd || Cycle(cmd.Class.RAS) < tt.ras {
			c.counts.FastACT++
		}
	case CmdPRE:
		b := &r.banks[cmd.Bank]
		b.applyPRE(now, tt)
		r.noteBankACT(b.nextACT)
		r.openBanks--
		c.counts.PRE++
	case CmdRD:
		b := &r.banks[cmd.Bank]
		b.applyRD(now, tt)
		r.applyRD(now, tt)
		c.dataBusFree = now + tt.rdBusHold
		c.dataBusRank = cmd.Rank
		c.counts.RD++
	case CmdWR:
		b := &r.banks[cmd.Bank]
		b.applyWR(now, tt)
		r.applyWR(now, tt)
		c.dataBusFree = now + tt.wrBusHold
		c.dataBusRank = cmd.Rank
		c.counts.WR++
	case CmdREF:
		r.applyREF(now, tt)
		r.inRefreshWindow = true
		c.counts.REF++
	}
}

// ReadDataAt returns the cycle at which read data issued at issueCycle is
// fully transferred (end of burst).
func (c *Channel) ReadDataAt(issueCycle Cycle) Cycle {
	return issueCycle + c.tt.rdBusHold
}

// WriteDataAt returns the cycle at which write data issued at issueCycle
// is fully transferred.
func (c *Channel) WriteDataAt(issueCycle Cycle) Cycle {
	return issueCycle + c.tt.wrBusHold
}

// SyncAccounting integrates background-state accounting to cycle now.
// Call once at the end of simulation (and whenever a consistent energy
// snapshot is needed).
func (c *Channel) SyncAccounting(now Cycle) {
	for i := range c.ranks {
		c.ranks[i].settle(now)
	}
	c.now = now
}

// ResetAccounting zeroes command counts and occupancy integration as of
// cycle now (used after simulation warm-up). Timing and row-buffer state
// are preserved.
func (c *Channel) ResetAccounting(now Cycle) {
	c.SyncAccounting(now)
	c.counts = CommandCounts{}
	for i := range c.ranks {
		r := &c.ranks[i]
		r.activeCycles = 0
		r.refreshCycles = 0
		r.lastEdge = now
	}
	c.now = now
	c.accountBase = now
}

// Occupancy summarizes per-channel background state for the power model.
type Occupancy struct {
	ActiveCycles  Cycle // cycles with >=1 bank open (outside refresh)
	RefreshCycles Cycle // cycles inside tRFC windows
	TotalCycles   Cycle
}

// Occupancy returns aggregate occupancy across the channel's ranks up to
// the last SyncAccounting call, covering the current accounting window
// (since construction or the last ResetAccounting).
func (c *Channel) Occupancy() Occupancy {
	var o Occupancy
	for i := range c.ranks {
		o.ActiveCycles += c.ranks[i].activeCycles
		o.RefreshCycles += c.ranks[i].refreshCycles
	}
	o.TotalCycles = (c.now - c.accountBase) * Cycle(len(c.ranks))
	return o
}
