package dram

// NoEvent is the sentinel "no scheduled future event" cycle. It is far
// beyond any reachable simulation time but small enough that callers
// can still add offsets without overflowing.
const NoEvent Cycle = 1 << 56

// RankActReady reports whether the rank-level activate constraints —
// tRRD spacing, the tFAW window, and refresh busy — permit an ACT at
// cycle now. Like RankColumnReady it mirrors CanIssue's rank checks so
// schedulers can skip per-request activate probes that cannot succeed.
func (c *Channel) RankActReady(rankID int, now Cycle) bool {
	return c.ranks[rankID].canACT(now)
}

// RankColumnReady reports whether the rank-level constraints on column
// commands — refresh busy, tCCD/turnaround spacing, and data-bus
// occupancy — permit a read (isRead) or write at cycle now. It mirrors
// exactly the rank and bus checks CanIssue applies to RD/WR, so
// schedulers can hoist it out of per-request walks: when it is false,
// no column command of that kind to this rank can issue this cycle
// regardless of bank state.
func (c *Channel) RankColumnReady(rankID int, isRead bool, now Cycle) bool {
	r := &c.ranks[rankID]
	if r.refreshing(now) {
		return false
	}
	if isRead {
		return now >= r.nextRD && c.busFreeFor(now+Cycle(c.spec.Timing.CL), rankID)
	}
	return now >= r.nextWR && c.busFreeFor(now+Cycle(c.spec.Timing.CWL), rankID)
}

// NextTimingExpiry returns the earliest cycle strictly after now at
// which a timing constraint of this channel expires, or NoEvent when
// none is pending. The event-driven scheduler uses it as a conservative
// wake-up bound: between now and the returned cycle, no command that is
// currently illegal can become legal, because command legality changes
// only when (a) one of the enumerated timing registers expires or (b) a
// command issues — and issuing is itself an executed event.
//
// The enumeration mirrors CanIssue case by case:
//
//	ACT  — bank.nextACT, rank.nextACT, the tFAW window head, refreshUntil
//	PRE  — bank.nextPRE, refreshUntil; also bank.nextACT - tRP, the
//	       first cycle at which the controller's preUseful heuristic
//	       allows a conflict precharge (the PRE acts *before* nextACT)
//	RD/WR — bank/rank next read/write bounds, refreshUntil, and the
//	       data-bus release minus the command-to-data lead time (two
//	       candidates: with and without the tRTRS rank-switch penalty,
//	       so a cross-rank bus flip is never later than the bound)
//	REF  — rank.nextREF plus the per-bank ACT bounds REF legality checks
//
// Waking earlier than strictly necessary is harmless (an idle
// controller tick is idempotent); waking late would skip an event, so
// every candidate errs early.
func (c *Channel) NextTimingExpiry(now Cycle) Cycle {
	next := NoEvent
	t := c.spec.Timing
	// Data-bus release: a RD becomes bus-legal at dataBusFree-CL, a WR
	// at dataBusFree-CWL, each tRTRS later for a rank other than the
	// bus's last user. All variants are enumerated — a single "earliest"
	// candidate would be filtered out by the strict > now test while a
	// later variant's flip is still ahead.
	if v := c.dataBusFree - Cycle(t.CL); v > now && v < next {
		next = v
	}
	if v := c.dataBusFree - Cycle(t.CWL); v > now && v < next {
		next = v
	}
	if len(c.ranks) > 1 {
		if v := c.dataBusFree + Cycle(t.RTRS) - Cycle(t.CL); v > now && v < next {
			next = v
		}
		if v := c.dataBusFree + Cycle(t.RTRS) - Cycle(t.CWL); v > now && v < next {
			next = v
		}
	}
	rp := Cycle(t.RP)
	for i := range c.ranks {
		r := &c.ranks[i]
		if v := r.nextACT; v > now && v < next {
			next = v
		}
		if v := r.nextRD; v > now && v < next {
			next = v
		}
		if v := r.nextWR; v > now && v < next {
			next = v
		}
		if v := r.nextREF; v > now && v < next {
			next = v
		}
		if v := r.refreshUntil; v > now && v < next {
			next = v
		}
		if r.actWindowLen == 4 {
			if v := r.actWindow[0]; v > now && v < next {
				next = v
			}
		}
		for b := range r.banks {
			bk := &r.banks[b]
			if v := bk.nextACT; v > now && v < next {
				next = v
			}
			if v := bk.nextACT - rp; v > now && v < next {
				next = v
			}
			if v := bk.nextPRE; v > now && v < next {
				next = v
			}
			if v := bk.nextRD; v > now && v < next {
				next = v
			}
			if v := bk.nextWR; v > now && v < next {
				next = v
			}
		}
	}
	return next
}
