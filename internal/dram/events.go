package dram

// NoEvent is the sentinel "no scheduled future event" cycle. It is far
// beyond any reachable simulation time but small enough that callers
// can still add offsets without overflowing.
const NoEvent Cycle = 1 << 56

// RankActReady reports whether the rank-level activate constraints —
// tRRD spacing, the tFAW window, and refresh busy, all folded into one
// register — permit an ACT at cycle now. Like RankColumnReady it mirrors
// CanIssue's rank checks so schedulers can skip per-request activate
// probes that cannot succeed.
func (c *Channel) RankActReady(rankID int, now Cycle) bool {
	return c.ranks[rankID].canACT(now)
}

// RankColumnReady reports whether the rank-level constraints on column
// commands — refresh busy, tCCD/turnaround spacing, and data-bus
// occupancy — permit a read (isRead) or write at cycle now. It mirrors
// exactly the rank and bus checks CanIssue applies to RD/WR, so
// schedulers can hoist it out of per-request walks: when it is false,
// no column command of that kind to this rank can issue this cycle
// regardless of bank state.
func (c *Channel) RankColumnReady(rankID int, isRead bool, now Cycle) bool {
	r := &c.ranks[rankID]
	if isRead {
		return now >= r.nextRD && c.busFreeFor(now+c.tt.cl, rankID)
	}
	return now >= r.nextWR && c.busFreeFor(now+c.tt.cwl, rankID)
}

// BankColumnIssuable reports whether the bank-level half of a column
// command's legality holds: row open and past the activation's tRCD.
// Combined with RankColumnReady (the rank and data-bus half) it equals
// CanIssue for a RD/WR whose coordinates are in range — the form
// schedulers use on per-bank candidates without building a Command.
func (c *Channel) BankColumnIssuable(rankID, bankID int, isRead bool, now Cycle) bool {
	b := &c.ranks[rankID].banks[bankID]
	if isRead {
		return b.state == BankActive && now >= b.nextRD
	}
	return b.state == BankActive && now >= b.nextWR
}

// BankActIssuable reports the bank-level half of ACT legality (bank
// precharged and past tRC/tRP). Combined with RankActReady it equals
// CanIssue for an in-range ACT.
func (c *Channel) BankActIssuable(rankID, bankID int, now Cycle) bool {
	return c.ranks[rankID].banks[bankID].canACT(now)
}

// PreIssuable equals CanIssue for an in-range PRE: a row is open, past
// tRAS/tRTP/tWR, and the rank is not refreshing.
func (c *Channel) PreIssuable(rankID, bankID int, now Cycle) bool {
	r := &c.ranks[rankID]
	return !r.refreshing(now) && r.banks[bankID].canPRE(now)
}

// ColumnIssueAt returns the exact earliest cycle at which a RD/WR to
// (rank, bank) can issue, assuming the bank stays active and no other
// command intervenes: the bank's tRCD bound, the rank's tCCD/turnaround
// bound, and the data-bus release (with tRTRS if the bus last served
// another rank). Schedulers read it off the registers to compute exact
// wake-ups instead of probing legality cycle by cycle.
func (c *Channel) ColumnIssueAt(rankID, bankID int, isRead bool) Cycle {
	r := &c.ranks[rankID]
	free := c.dataBusFree
	if c.dataBusRank >= 0 && c.dataBusRank != rankID {
		free += c.tt.rtrs
	}
	if isRead {
		return maxCycle(r.banks[bankID].nextRD, maxCycle(r.nextRD, free-c.tt.cl))
	}
	return maxCycle(r.banks[bankID].nextWR, maxCycle(r.nextWR, free-c.tt.cwl))
}

// ActIssueAt returns the exact earliest cycle an ACT to (rank, bank)
// can issue, assuming the bank stays precharged and no command
// intervenes.
func (c *Channel) ActIssueAt(rankID, bankID int) Cycle {
	return maxCycle(c.ranks[rankID].banks[bankID].nextACT, c.ranks[rankID].nextACT)
}

// PreIssueAt returns the exact earliest cycle a PRE to (rank, bank) can
// issue, assuming the bank stays active and no command intervenes.
func (c *Channel) PreIssueAt(rankID, bankID int) Cycle {
	return maxCycle(c.ranks[rankID].banks[bankID].nextPRE, c.ranks[rankID].refreshUntil)
}

// NextTimingExpiry returns the earliest cycle strictly after now at
// which a timing constraint of this channel expires, or NoEvent when
// none is pending. The event-driven scheduler uses it as a conservative
// wake-up bound: between now and the returned cycle, no command that is
// currently illegal can become legal, because command legality changes
// only when (a) one of the next-allowed registers expires or (b) a
// command issues — and issuing is itself an executed event.
//
// The registers are folded to exact legality flips at Issue time (tFAW
// window head and refresh busy into the rank ACT register, refresh into
// the column and REF registers), so the candidate enumeration is a flat
// read of the register file:
//
//	ACT  — bank.nextACT, rank.nextACT
//	PRE  — bank.nextPRE, rank.refreshUntil; also bank.nextACT - tRP,
//	       the first cycle at which the controller's preUseful heuristic
//	       allows a conflict precharge (the PRE acts *before* nextACT)
//	RD/WR — bank/rank next read/write bounds and the data-bus release
//	       minus the command-to-data lead time (two candidates: with and
//	       without the tRTRS rank-switch penalty, so a cross-rank bus
//	       flip is never later than the bound)
//	REF  — rank.nextREF; the per-bank ACT bounds REF legality also
//	       checks are covered by the bank.nextACT candidates
//
// The result is cached and invalidated by Issue: registers move only
// then, so between issues repeated queries are O(1) reads, and the scan
// cost amortizes to one register-file pass per issued command.
//
// Waking earlier than strictly necessary is harmless (an idle
// controller tick is idempotent); waking late would skip an event, so
// every candidate errs early.
func (c *Channel) NextTimingExpiry(now Cycle) Cycle {
	if !c.expiryStale && c.expiryFrom <= now && c.expiryCache > now {
		// Unchanged registers and an unexpired bound: the cached value
		// was the earliest candidate after expiryFrom and no candidate
		// lies in (expiryFrom, cache), so it is still the earliest
		// after now.
		return c.expiryCache
	}
	v := c.scanExpiry(now)
	c.expiryStale = false
	c.expiryFrom = now
	c.expiryCache = v
	return v
}

// scanExpiry enumerates the register file for the earliest candidate
// strictly after now.
func (c *Channel) scanExpiry(now Cycle) Cycle {
	next := NoEvent
	add := func(t Cycle) {
		if t > now && t < next {
			next = t
		}
	}
	add(c.dataBusFree - c.tt.cl)
	add(c.dataBusFree - c.tt.cwl)
	if len(c.ranks) > 1 {
		add(c.dataBusFree + c.tt.rtrs - c.tt.cl)
		add(c.dataBusFree + c.tt.rtrs - c.tt.cwl)
	}
	rp := c.tt.rp
	for i := range c.ranks {
		r := &c.ranks[i]
		add(r.nextACT)
		add(r.nextRD)
		add(r.nextWR)
		add(r.nextREF)
		add(r.refreshUntil)
		for b := range r.banks {
			bk := &r.banks[b]
			if bk.maxReg <= now {
				// Every register of this bank lies in the past: no
				// candidate here (nextACT-tRP is bounded by nextACT).
				continue
			}
			add(bk.nextACT)
			add(bk.nextACT - rp)
			add(bk.nextPRE)
			add(bk.nextRD)
			add(bk.nextWR)
		}
	}
	return next
}
