package core

import "fmt"

// hcrac is the Highly-Charged Row Address Cache: a tag-only,
// set-associative cache of row addresses with LRU replacement (Section
// 4.2 of the paper). It stores no data — presence of a key means "this
// row was recently precharged and is still highly charged".
type hcrac struct {
	sets  int
	assoc int

	// Entry storage, indexed by set*assoc+way.
	keys  []RowKey
	valid []bool
	used  []uint64 // LRU timestamps

	tick uint64 // monotonically increasing use counter
}

func newHCRAC(entries, assoc int) (*hcrac, error) {
	if entries <= 0 || assoc <= 0 {
		return nil, fmt.Errorf("core: hcrac entries (%d) and assoc (%d) must be positive", entries, assoc)
	}
	if entries%assoc != 0 {
		return nil, fmt.Errorf("core: hcrac entries (%d) must be a multiple of assoc (%d)", entries, assoc)
	}
	sets := entries / assoc
	return &hcrac{
		sets:  sets,
		assoc: assoc,
		keys:  make([]RowKey, entries),
		valid: make([]bool, entries),
		used:  make([]uint64, entries),
	}, nil
}

func (h *hcrac) entries() int { return h.sets * h.assoc }

// setIndex maps a row key to its set. Rank/bank bits are mixed into the
// row bits so rows with equal low-order row numbers in different banks do
// not all collide.
func (h *hcrac) setIndex(key RowKey) int {
	x := uint64(key)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(h.sets))
}

// lookup reports whether key is present; a hit refreshes its LRU stamp.
func (h *hcrac) lookup(key RowKey) bool {
	base := h.setIndex(key) * h.assoc
	for w := 0; w < h.assoc; w++ {
		i := base + w
		if h.valid[i] && h.keys[i] == key {
			h.tick++
			h.used[i] = h.tick
			return true
		}
	}
	return false
}

// insert adds key, replacing the LRU way if the set is full. It reports
// whether a valid entry was evicted. Inserting a key already present
// refreshes it in place.
func (h *hcrac) insert(key RowKey) (evicted bool) {
	base := h.setIndex(key) * h.assoc
	victim := base
	for w := 0; w < h.assoc; w++ {
		i := base + w
		if h.valid[i] && h.keys[i] == key {
			h.tick++
			h.used[i] = h.tick
			return false
		}
		if !h.valid[i] {
			victim = i
			// Keep scanning: the key might be present in a later way.
			continue
		}
		if h.valid[victim] && h.used[i] < h.used[victim] {
			victim = i
		}
	}
	evicted = h.valid[victim]
	h.tick++
	h.keys[victim] = key
	h.valid[victim] = true
	h.used[victim] = h.tick
	return evicted
}

// invalidateIndex clears the entry at linear index i (the EC walk). It
// reports whether a valid entry was removed.
func (h *hcrac) invalidateIndex(i int) bool {
	if !h.valid[i] {
		return false
	}
	h.valid[i] = false
	return true
}

// invalidateAll clears every entry.
func (h *hcrac) invalidateAll() {
	for i := range h.valid {
		h.valid[i] = false
	}
}

// countValid returns the number of valid entries (test/debug helper).
func (h *hcrac) countValid() int {
	n := 0
	for _, v := range h.valid {
		if v {
			n++
		}
	}
	return n
}
