package core

import "repro/internal/dram"

// MechProbe receives per-event ChargeCache traces for the opt-in
// perf-analyzer (internal/analysis). Implementations must only
// observe; the mechanism's decisions do not depend on the probe.
type MechProbe interface {
	// ObserveLookup fires on every OnActivate lookup with its outcome.
	ObserveLookup(key RowKey, hit bool, now dram.Cycle)

	// ObserveInsert fires on every OnPrecharge insert; evicted marks a
	// capacity replacement of a valid entry.
	ObserveInsert(key RowKey, evicted bool, now dram.Cycle)

	// ObserveExpiry fires when a timed invalidation clears a valid
	// entry, at its nominal cycle: for the IIC/EC walk the rollover
	// cycle (a multiple of the invalidation interval — the walk itself
	// catches up lazily, so the call may arrive later, but the nominal
	// cycle is identical between execution engines), for exact-expiry
	// and unlimited tables the detecting lookup's cycle.
	ObserveExpiry(key RowKey, at dram.Cycle)
}

// SetProbe installs p to trace this cache's events (nil removes it).
func (cc *ChargeCache) SetProbe(p MechProbe) { cc.probe = p }

// SetProbe installs p on the ChargeCache component (NUAT itself has no
// event stream worth tracing — it is stateless per activation).
func (m *ChargeCacheNUAT) SetProbe(p MechProbe) { m.cc.SetProbe(p) }
