package core

import (
	"fmt"
	"sort"

	"repro/internal/dram"
)

// NUATBin maps a time-since-refresh upper bound to the timing class that
// is safe for rows refreshed at most MaxAge ago.
type NUATBin struct {
	MaxAge dram.Cycle
	Class  dram.TimingClass
}

// NUATConfig parameterizes the NUAT mechanism (Shin et al., HPCA 2014),
// the paper's main comparison point. NUAT exploits the charge put into a
// row by the periodic refresh: a row refreshed recently can be activated
// with lowered timings. Unlike ChargeCache it does not react to the
// application's own access stream.
type NUATConfig struct {
	// Bins, ordered by ascending MaxAge. An activation whose
	// time-since-refresh is <= Bins[i].MaxAge (for the smallest such i)
	// uses Bins[i].Class. Ages beyond the last bin use Default.
	Bins []NUATBin

	// Default is the specification timing class.
	Default dram.TimingClass
}

// Validate reports configuration errors.
func (c NUATConfig) Validate() error {
	if len(c.Bins) == 0 {
		return fmt.Errorf("core: NUAT needs at least one bin")
	}
	if !sort.SliceIsSorted(c.Bins, func(i, j int) bool { return c.Bins[i].MaxAge < c.Bins[j].MaxAge }) {
		return fmt.Errorf("core: NUAT bins must be sorted by MaxAge")
	}
	for i, b := range c.Bins {
		if b.MaxAge <= 0 {
			return fmt.Errorf("core: NUAT bin %d has non-positive MaxAge", i)
		}
		if b.Class.RCD <= 0 || b.Class.RAS <= 0 ||
			b.Class.RCD > c.Default.RCD || b.Class.RAS > c.Default.RAS {
			return fmt.Errorf("core: NUAT bin %d class %+v invalid vs default %+v", i, b.Class, c.Default)
		}
		if i > 0 {
			prev := c.Bins[i-1].Class
			if b.Class.RCD < prev.RCD || b.Class.RAS < prev.RAS {
				return fmt.Errorf("core: NUAT bin %d faster than younger bin %d", i, i-1)
			}
		}
	}
	return nil
}

// NUAT serves activations of recently-refreshed rows with lowered
// timings, using the refresh age supplied by the controller's refresh
// engine. A "hit" in the stats is any activation that lands in a bin
// strictly faster than the default class.
type NUAT struct {
	cfg   NUATConfig
	stats Stats
}

// NewNUAT builds a NUAT mechanism; the config must validate.
func NewNUAT(cfg NUATConfig) (*NUAT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &NUAT{cfg: cfg}, nil
}

// Name implements Mechanism.
func (n *NUAT) Name() string { return "NUAT" }

// OnActivate implements Mechanism.
func (n *NUAT) OnActivate(_ RowKey, _, refreshAge dram.Cycle) dram.TimingClass {
	n.stats.Lookups++
	cls := n.classFor(refreshAge)
	if cls.RCD < n.cfg.Default.RCD || cls.RAS < n.cfg.Default.RAS {
		n.stats.Hits++
	}
	return cls
}

func (n *NUAT) classFor(age dram.Cycle) dram.TimingClass {
	for _, b := range n.cfg.Bins {
		if age <= b.MaxAge {
			return b.Class
		}
	}
	return n.cfg.Default
}

// OnPrecharge implements Mechanism.
func (n *NUAT) OnPrecharge(RowKey, dram.Cycle) {}

// Tick implements Mechanism.
func (n *NUAT) Tick(dram.Cycle) {}

// Stats implements Mechanism.
func (n *NUAT) Stats() Stats { return n.stats }

// ResetStats implements Mechanism.
func (n *NUAT) ResetStats() { n.stats = Stats{} }

// ChargeCacheNUAT combines both mechanisms: each activation uses the more
// aggressive of the two classes (Section 6: "ChargeCache + NUAT").
type ChargeCacheNUAT struct {
	cc   *ChargeCache
	nuat *NUAT
}

// NewChargeCacheNUAT combines a ChargeCache and a NUAT instance.
func NewChargeCacheNUAT(cc *ChargeCache, nuat *NUAT) *ChargeCacheNUAT {
	return &ChargeCacheNUAT{cc: cc, nuat: nuat}
}

// Name implements Mechanism.
func (m *ChargeCacheNUAT) Name() string { return "ChargeCache+NUAT" }

// OnActivate implements Mechanism.
func (m *ChargeCacheNUAT) OnActivate(key RowKey, now, refreshAge dram.Cycle) dram.TimingClass {
	return minClass(m.cc.OnActivate(key, now, refreshAge), m.nuat.OnActivate(key, now, refreshAge))
}

// OnPrecharge implements Mechanism.
func (m *ChargeCacheNUAT) OnPrecharge(key RowKey, now dram.Cycle) {
	m.cc.OnPrecharge(key, now)
	m.nuat.OnPrecharge(key, now)
}

// Tick implements Mechanism.
func (m *ChargeCacheNUAT) Tick(now dram.Cycle) {
	m.cc.Tick(now)
	m.nuat.Tick(now)
}

// Stats implements Mechanism: an activation counts as a hit if either
// component lowered its timing.
func (m *ChargeCacheNUAT) Stats() Stats {
	cs, ns := m.cc.Stats(), m.nuat.Stats()
	return Stats{
		Lookups:       cs.Lookups,
		Hits:          maxU64(cs.Hits, ns.Hits),
		Inserts:       cs.Inserts,
		Evictions:     cs.Evictions,
		Invalidations: cs.Invalidations,
	}
}

// ResetStats implements Mechanism.
func (m *ChargeCacheNUAT) ResetStats() {
	m.cc.ResetStats()
	m.nuat.ResetStats()
}

// ChargeCacheStats exposes the ChargeCache component's counters.
func (m *ChargeCacheNUAT) ChargeCacheStats() Stats { return m.cc.Stats() }

// NUATStats exposes the NUAT component's counters.
func (m *ChargeCacheNUAT) NUATStats() Stats { return m.nuat.Stats() }

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
