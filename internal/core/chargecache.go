package core

import (
	"fmt"

	"repro/internal/dram"
)

// InvalidationPolicy selects how ChargeCache expires stale entries.
type InvalidationPolicy uint8

const (
	// PeriodicIICEC is the paper's scheme (Section 4.2.3): an
	// Invalidation Interval Counter (IIC) counts up to C/k cycles, and on
	// each rollover an Entry Counter (EC) invalidates one entry, so every
	// entry is cleared once per caching duration C. Cheap (two counters)
	// but may invalidate an entry prematurely.
	PeriodicIICEC InvalidationPolicy = iota

	// ExactExpiry stores a per-entry insertion time and treats entries
	// older than the caching duration as misses. More storage (a
	// timestamp per entry); used as the ablation comparison point.
	ExactExpiry
)

// String implements fmt.Stringer.
func (p InvalidationPolicy) String() string {
	if p == ExactExpiry {
		return "exact-expiry"
	}
	return "iic-ec"
}

// ChargeCacheConfig parameterizes a per-channel ChargeCache.
type ChargeCacheConfig struct {
	// Entries is the total HCRAC capacity for this channel instance. The
	// paper sizes it at 128 entries per core (672 B per core for two
	// channels); a channel shared by N cores uses N*128.
	Entries int

	// Assoc is the set associativity (paper: 2-way, LRU).
	Assoc int

	// Duration is the caching duration in controller cycles: how long a
	// precharged row is considered highly charged (paper default: 1 ms).
	Duration dram.Cycle

	// Fast is the lowered timing class applied on a hit (paper default
	// for 1 ms: tRCD/tRAS reduced by 4/8 bus cycles at 800 MHz).
	Fast dram.TimingClass

	// Default is the specification timing class applied on a miss.
	Default dram.TimingClass

	// Unlimited, if true, replaces the HCRAC with an unbounded table
	// with exact expiry — the "unlimited size" upper-bound configuration
	// of Figure 9. Entries/Assoc are ignored.
	Unlimited bool

	// Invalidation selects the expiry scheme (default PeriodicIICEC).
	Invalidation InvalidationPolicy
}

// Validate reports configuration errors.
func (c ChargeCacheConfig) Validate() error {
	if !c.Unlimited {
		if c.Entries <= 0 || c.Assoc <= 0 || c.Entries%c.Assoc != 0 {
			return fmt.Errorf("core: bad HCRAC shape: entries=%d assoc=%d", c.Entries, c.Assoc)
		}
	}
	if c.Duration <= 0 {
		return fmt.Errorf("core: caching duration must be positive, got %d", c.Duration)
	}
	if c.Fast.RCD <= 0 || c.Fast.RAS <= 0 || c.Fast.RCD > c.Default.RCD || c.Fast.RAS > c.Default.RAS {
		return fmt.Errorf("core: fast class %+v must be positive and <= default %+v", c.Fast, c.Default)
	}
	return nil
}

// ChargeCache is the paper's mechanism: it tracks recently-precharged
// (highly-charged) rows in the HCRAC and serves activations that hit in
// it with the lowered timing class.
type ChargeCache struct {
	cfg   ChargeCacheConfig
	table *hcrac

	// IIC/EC invalidation state (PeriodicIICEC).
	iic      dram.Cycle // cycles since last entry invalidation
	interval dram.Cycle // C/k
	ec       int        // next entry index to invalidate
	lastTick dram.Cycle

	// Exact-expiry state: insertion time per entry (ExactExpiry), or per
	// key (Unlimited).
	insertedAt []dram.Cycle
	unlimited  map[RowKey]dram.Cycle

	// rollovers counts completed invalidation intervals since
	// construction; rollover j nominally lands at cycle j*interval, which
	// is the engine-invariant stamp for lazy EC-walk expiries.
	rollovers uint64

	stats Stats

	// probe, if set, receives lookup/insert/expiry events (see probe.go).
	probe MechProbe
}

// NewChargeCache builds a ChargeCache; the config must validate.
func NewChargeCache(cfg ChargeCacheConfig) (*ChargeCache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cc := &ChargeCache{cfg: cfg}
	if cfg.Unlimited {
		cc.unlimited = make(map[RowKey]dram.Cycle)
		return cc, nil
	}
	t, err := newHCRAC(cfg.Entries, cfg.Assoc)
	if err != nil {
		return nil, err
	}
	cc.table = t
	switch cfg.Invalidation {
	case PeriodicIICEC:
		cc.interval = cfg.Duration / dram.Cycle(cfg.Entries)
		if cc.interval < 1 {
			cc.interval = 1
		}
	case ExactExpiry:
		cc.insertedAt = make([]dram.Cycle, cfg.Entries)
	}
	return cc, nil
}

// Name implements Mechanism.
func (cc *ChargeCache) Name() string { return "ChargeCache" }

// Config returns the configuration the cache was built with.
func (cc *ChargeCache) Config() ChargeCacheConfig { return cc.cfg }

// OnActivate implements Mechanism: HCRAC lookup; a hit returns the
// lowered timing class.
//
//ccsim:zeroalloc
func (cc *ChargeCache) OnActivate(key RowKey, now, _ dram.Cycle) dram.TimingClass {
	cc.stats.Lookups++
	if cc.cfg.Unlimited {
		t, ok := cc.unlimited[key]
		if ok && now-t <= cc.cfg.Duration {
			cc.stats.Hits++
			if cc.probe != nil {
				cc.probe.ObserveLookup(key, true, now)
			}
			return cc.cfg.Fast
		}
		if ok {
			delete(cc.unlimited, key)
			cc.stats.Invalidations++
			if cc.probe != nil {
				cc.probe.ObserveExpiry(key, now)
			}
		}
		if cc.probe != nil {
			cc.probe.ObserveLookup(key, false, now)
		}
		return cc.cfg.Default
	}

	base := cc.table.setIndex(key) * cc.cfg.Assoc
	for w := 0; w < cc.cfg.Assoc; w++ {
		i := base + w
		if !cc.table.valid[i] || cc.table.keys[i] != key {
			continue
		}
		if cc.cfg.Invalidation == ExactExpiry && now-cc.insertedAt[i] > cc.cfg.Duration {
			cc.table.valid[i] = false
			cc.stats.Invalidations++
			if cc.probe != nil {
				cc.probe.ObserveExpiry(key, now)
				cc.probe.ObserveLookup(key, false, now)
			}
			return cc.cfg.Default
		}
		cc.table.tick++
		cc.table.used[i] = cc.table.tick
		cc.stats.Hits++
		if cc.probe != nil {
			cc.probe.ObserveLookup(key, true, now)
		}
		return cc.cfg.Fast
	}
	if cc.probe != nil {
		cc.probe.ObserveLookup(key, false, now)
	}
	return cc.cfg.Default
}

// OnPrecharge implements Mechanism: the just-closed row is highly charged
// (the activation restored it), so insert its address.
//
//ccsim:zeroalloc
func (cc *ChargeCache) OnPrecharge(key RowKey, now dram.Cycle) {
	cc.stats.Inserts++
	if cc.cfg.Unlimited {
		cc.unlimited[key] = now
		if cc.probe != nil {
			cc.probe.ObserveInsert(key, false, now)
		}
		return
	}
	if cc.cfg.Invalidation == ExactExpiry {
		// Record the insertion time in the slot the key lands in.
		evicted := cc.table.insert(key)
		if evicted {
			cc.stats.Evictions++
		}
		base := cc.table.setIndex(key) * cc.cfg.Assoc
		for w := 0; w < cc.cfg.Assoc; w++ {
			i := base + w
			if cc.table.valid[i] && cc.table.keys[i] == key {
				cc.insertedAt[i] = now
				break
			}
		}
		if cc.probe != nil {
			cc.probe.ObserveInsert(key, evicted, now)
		}
		return
	}
	evicted := cc.table.insert(key)
	if evicted {
		cc.stats.Evictions++
	}
	if cc.probe != nil {
		cc.probe.ObserveInsert(key, evicted, now)
	}
}

// Tick implements Mechanism: advances the IIC and performs the EC walk
// lazily. Rather than an eager per-cycle scan, the walk catches up on
// however many invalidation intervals elapsed since the last call, so
// the event-driven engine's skipped cycles never miss an invalidation:
// with no lookups or inserts inside the gap, the deferred walk
// invalidates exactly the entries an every-cycle walk would have (see
// lazy_expiry_test.go).
//
//ccsim:zeroalloc
func (cc *ChargeCache) Tick(now dram.Cycle) {
	if cc.cfg.Unlimited || cc.cfg.Invalidation != PeriodicIICEC {
		cc.lastTick = now
		return
	}
	elapsed := now - cc.lastTick
	if elapsed <= 0 {
		return
	}
	cc.lastTick = now
	cc.iic += elapsed
	for cc.iic >= cc.interval {
		cc.iic -= cc.interval
		cc.rollovers++
		if cc.probe != nil && cc.table.valid[cc.ec] {
			// Stamp the expiry at its nominal rollover cycle, not the
			// (engine-dependent) cycle the lazy walk caught up.
			cc.probe.ObserveExpiry(cc.table.keys[cc.ec], cc.interval*dram.Cycle(cc.rollovers))
		}
		if cc.table.invalidateIndex(cc.ec) {
			cc.stats.Invalidations++
		}
		cc.ec++
		if cc.ec >= cc.cfg.Entries {
			cc.ec = 0
		}
	}
}

// Stats implements Mechanism.
func (cc *ChargeCache) Stats() Stats { return cc.stats }

// ResetStats implements Mechanism.
func (cc *ChargeCache) ResetStats() { cc.stats = Stats{} }

// Occupancy returns the number of currently valid entries (for tests and
// introspection).
func (cc *ChargeCache) Occupancy() int {
	if cc.cfg.Unlimited {
		return len(cc.unlimited)
	}
	return cc.table.countValid()
}
