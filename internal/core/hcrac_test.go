package core

import (
	"testing"
	"testing/quick"
)

func TestHCRACRejectsBadShape(t *testing.T) {
	if _, err := newHCRAC(0, 2); err == nil {
		t.Error("accepted zero entries")
	}
	if _, err := newHCRAC(128, 0); err == nil {
		t.Error("accepted zero assoc")
	}
	if _, err := newHCRAC(127, 2); err == nil {
		t.Error("accepted entries not multiple of assoc")
	}
}

func TestHCRACInsertLookup(t *testing.T) {
	h, err := newHCRAC(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	k := MakeRowKey(0, 3, 42)
	if h.lookup(k) {
		t.Error("lookup hit on empty cache")
	}
	if h.insert(k) {
		t.Error("insert into empty cache reported eviction")
	}
	if !h.lookup(k) {
		t.Error("lookup miss after insert")
	}
	if h.countValid() != 1 {
		t.Errorf("countValid = %d, want 1", h.countValid())
	}
}

func TestHCRACReinsertDoesNotDuplicate(t *testing.T) {
	h, _ := newHCRAC(8, 2)
	k := MakeRowKey(0, 0, 7)
	h.insert(k)
	h.insert(k)
	if h.countValid() != 1 {
		t.Errorf("countValid = %d after re-insert, want 1", h.countValid())
	}
}

func TestHCRACLRUEviction(t *testing.T) {
	// Single-set cache: 2 entries, 2-way.
	h, _ := newHCRAC(2, 2)
	a, b, c := MakeRowKey(0, 0, 1), MakeRowKey(0, 0, 2), MakeRowKey(0, 0, 3)
	h.insert(a)
	h.insert(b)
	h.lookup(a) // touch a: b becomes LRU
	if evicted := h.insert(c); !evicted {
		t.Error("insert into full set did not evict")
	}
	if !h.lookup(a) {
		t.Error("MRU entry was evicted")
	}
	if h.lookup(b) {
		t.Error("LRU entry survived eviction")
	}
	if !h.lookup(c) {
		t.Error("new entry not present")
	}
}

func TestHCRACInvalidateIndex(t *testing.T) {
	h, _ := newHCRAC(4, 2)
	k := MakeRowKey(0, 0, 5)
	h.insert(k)
	// Find its index and invalidate it.
	removed := false
	for i := 0; i < h.entries(); i++ {
		if h.valid[i] && h.keys[i] == k {
			if !h.invalidateIndex(i) {
				t.Error("invalidateIndex returned false for valid entry")
			}
			removed = true
		}
	}
	if !removed {
		t.Fatal("inserted key not found in table")
	}
	if h.lookup(k) {
		t.Error("lookup hit after invalidation")
	}
	if h.invalidateIndex(0) && h.countValid() != 0 {
		t.Error("invalidating empty entry claimed removal")
	}
}

func TestHCRACInvalidateAll(t *testing.T) {
	h, _ := newHCRAC(16, 2)
	for i := 0; i < 16; i++ {
		h.insert(MakeRowKey(0, i%8, i))
	}
	h.invalidateAll()
	if h.countValid() != 0 {
		t.Errorf("countValid = %d after invalidateAll", h.countValid())
	}
}

// Property: after inserting any sequence of keys, every key that was
// inserted and not displaced is findable, and occupancy never exceeds
// capacity.
func TestHCRACOccupancyBound(t *testing.T) {
	f := func(rows []uint16) bool {
		h, _ := newHCRAC(32, 2)
		for _, r := range rows {
			h.insert(MakeRowKey(0, int(r)%8, int(r)))
		}
		return h.countValid() <= 32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a freshly inserted key is always findable immediately (it
// cannot be the victim of its own insertion).
func TestHCRACInsertThenLookupAlwaysHits(t *testing.T) {
	h, _ := newHCRAC(8, 2)
	f := func(rank uint8, bank uint8, row uint16) bool {
		k := MakeRowKey(int(rank%2), int(bank%8), int(row))
		h.insert(k)
		return h.lookup(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: setIndex is deterministic and in range.
func TestHCRACSetIndexInRange(t *testing.T) {
	h, _ := newHCRAC(64, 2)
	f := func(k uint64) bool {
		i := h.setIndex(RowKey(k))
		j := h.setIndex(RowKey(k))
		return i == j && i >= 0 && i < h.sets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowKeyPackUnpack(t *testing.T) {
	f := func(rank uint8, bank uint8, row uint32) bool {
		r, b, ro := int(rank%4), int(bank%16), int(row%(1<<20))
		k := MakeRowKey(r, b, ro)
		return k.Rank() == r && k.Bank() == b && k.Row() == ro
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowKeyString(t *testing.T) {
	k := MakeRowKey(1, 5, 1234)
	if got, want := k.String(), "r1/b5/row1234"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
