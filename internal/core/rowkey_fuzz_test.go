package core

import "testing"

// FuzzRowKeyRoundTrip checks MakeRowKey/Rank/Bank/Row are lossless over
// the field ranges DRAM geometries can produce (rank and bank fit their
// key fields; rows up to 2^31-1). Two distinct (rank, bank, row)
// triples must never collide — the HCRAC and the refresh engine both
// identify rows by this key alone.
func FuzzRowKeyRoundTrip(f *testing.F) {
	f.Add(0, 0, 0)
	f.Add(3, 7, 1<<16-1)
	f.Add(255, 255, 1<<31-1)
	f.Fuzz(func(t *testing.T, rank, bank, row int) {
		// Clamp to the key's field widths: 8 bits of bank, 24 bits of
		// rank, 32 bits of row (non-negative).
		rank &= 0xff
		bank &= 0xff
		row &= 1<<31 - 1

		k := MakeRowKey(rank, bank, row)
		if k.Rank() != rank || k.Bank() != bank || k.Row() != row {
			t.Fatalf("MakeRowKey(%d,%d,%d) round-trips to (%d,%d,%d)",
				rank, bank, row, k.Rank(), k.Bank(), k.Row())
		}

		// Injectivity against a perturbed triple.
		other := MakeRowKey(rank, bank^1, row)
		if other == k {
			t.Fatalf("distinct banks collide: %v", k)
		}
	})
}
