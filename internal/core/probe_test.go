package core

import (
	"testing"

	"repro/internal/dram"
)

// mechEvent is one recorded probe callback.
type mechEvent struct {
	kind string // "lookup", "insert", "expiry"
	key  RowKey
	flag bool // hit (lookup) or evicted (insert)
	at   dram.Cycle
}

type recMechProbe struct{ events []mechEvent }

func (p *recMechProbe) ObserveLookup(key RowKey, hit bool, now dram.Cycle) {
	p.events = append(p.events, mechEvent{"lookup", key, hit, now})
}

func (p *recMechProbe) ObserveInsert(key RowKey, evicted bool, now dram.Cycle) {
	p.events = append(p.events, mechEvent{"insert", key, evicted, now})
}

func (p *recMechProbe) ObserveExpiry(key RowKey, at dram.Cycle) {
	p.events = append(p.events, mechEvent{"expiry", key, false, at})
}

func probeCC(t *testing.T, cfg ChargeCacheConfig) (*ChargeCache, *recMechProbe) {
	t.Helper()
	cc, err := NewChargeCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := &recMechProbe{}
	cc.SetProbe(p)
	return cc, p
}

func smallCCConfig() ChargeCacheConfig {
	def := dram.TimingClass{RCD: 11, RAS: 28}
	return ChargeCacheConfig{
		Entries:  4,
		Assoc:    2,
		Duration: 100,
		Fast:     dram.TimingClass{RCD: 7, RAS: 20},
		Default:  def,
	}
}

// TestProbeLookupInsert checks the basic miss → insert → hit event flow.
func TestProbeLookupInsert(t *testing.T) {
	cc, p := probeCC(t, smallCCConfig())
	key := MakeRowKey(0, 1, 42)

	cc.OnActivate(key, 10, 0)
	cc.OnPrecharge(key, 20)
	cc.OnActivate(key, 30, 0)

	want := []mechEvent{
		{"lookup", key, false, 10},
		{"insert", key, false, 20},
		{"lookup", key, true, 30},
	}
	if len(p.events) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(p.events), p.events, len(want))
	}
	for i, w := range want {
		if p.events[i] != w {
			t.Errorf("event %d = %+v, want %+v", i, p.events[i], w)
		}
	}
}

// TestProbeEviction fills one set past capacity and expects the insert
// that displaces a valid entry to be flagged as an eviction.
func TestProbeEviction(t *testing.T) {
	cc, p := probeCC(t, smallCCConfig())
	// Six distinct keys into a 4-entry table: at least two inserts must
	// displace valid entries regardless of how the set hash spreads them.
	for row := 0; row < 6; row++ {
		cc.OnPrecharge(MakeRowKey(0, 0, row), dram.Cycle(row+1))
	}

	evictions := 0
	for _, e := range p.events {
		if e.kind == "insert" && e.flag {
			evictions++
		}
	}
	if want := int(cc.Stats().Evictions); evictions != want || want == 0 {
		t.Errorf("probe saw %d evictions, stats say %d (want nonzero and equal)",
			evictions, want)
	}
}

// TestProbeIICExpiry advances the clock one full caching duration and
// expects the lazy EC walk to report the expiry of a live entry at its
// nominal rollover cycle — a multiple of the invalidation interval,
// independent of when the walk caught up.
func TestProbeIICExpiry(t *testing.T) {
	cc, p := probeCC(t, smallCCConfig())
	key := MakeRowKey(0, 0, 0)
	cc.OnPrecharge(key, 0)

	// interval = Duration/Entries = 25. One big lazy jump over several
	// intervals must stamp each expiry at its own rollover cycle.
	cc.Tick(10)
	cc.Tick(120)

	var expiries []mechEvent
	for _, e := range p.events {
		if e.kind == "expiry" {
			expiries = append(expiries, e)
		}
	}
	if len(expiries) != 1 {
		t.Fatalf("got %d expiry events %v, want 1", len(expiries), p.events)
	}
	interval := cc.cfg.Duration / dram.Cycle(cc.cfg.Entries)
	if expiries[0].at%interval != 0 {
		t.Errorf("expiry at %d is not a rollover multiple of %d", expiries[0].at, interval)
	}
	if expiries[0].key != key {
		t.Errorf("expiry key = %v, want %v", expiries[0].key, key)
	}
}

// TestProbeExactExpiry checks the exact-expiry detection path: a lookup
// past the caching duration reports expiry-then-miss at the lookup
// cycle.
func TestProbeExactExpiry(t *testing.T) {
	cfg := smallCCConfig()
	cfg.Invalidation = ExactExpiry
	cc, p := probeCC(t, cfg)
	key := MakeRowKey(0, 0, 7)

	cc.OnPrecharge(key, 0)
	cc.OnActivate(key, 150, 0) // duration is 100: stale

	want := []mechEvent{
		{"insert", key, false, 0},
		{"expiry", key, false, 150},
		{"lookup", key, false, 150},
	}
	if len(p.events) != len(want) {
		t.Fatalf("got events %v, want %v", p.events, want)
	}
	for i, w := range want {
		if p.events[i] != w {
			t.Errorf("event %d = %+v, want %+v", i, p.events[i], w)
		}
	}
}

// TestProbeUnlimitedExpiry checks the unbounded-table path likewise.
func TestProbeUnlimitedExpiry(t *testing.T) {
	cfg := smallCCConfig()
	cfg.Unlimited = true
	cc, p := probeCC(t, cfg)
	key := MakeRowKey(0, 0, 9)

	cc.OnPrecharge(key, 0)
	cc.OnActivate(key, 50, 0)  // hit
	cc.OnActivate(key, 200, 0) // stale: expiry + miss

	want := []mechEvent{
		{"insert", key, false, 0},
		{"lookup", key, true, 50},
		{"expiry", key, false, 200},
		{"lookup", key, false, 200},
	}
	if len(p.events) != len(want) {
		t.Fatalf("got events %v, want %v", p.events, want)
	}
	for i, w := range want {
		if p.events[i] != w {
			t.Errorf("event %d = %+v, want %+v", i, p.events[i], w)
		}
	}
}

// TestChargeCacheZeroAllocWithoutProbe keeps the HCRAC hot path
// allocation-free when no probe is installed.
func TestChargeCacheZeroAllocWithoutProbe(t *testing.T) {
	cc, err := NewChargeCache(smallCCConfig())
	if err != nil {
		t.Fatal(err)
	}
	key := MakeRowKey(0, 0, 3)
	now := dram.Cycle(0)
	allocs := testing.AllocsPerRun(200, func() {
		cc.OnPrecharge(key, now)
		cc.OnActivate(key, now+10, 0)
		cc.Tick(now + 20)
		now += 30
	})
	if allocs != 0 {
		t.Errorf("ChargeCache hot path allocated %.1f times per round, want 0", allocs)
	}
}
