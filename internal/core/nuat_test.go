package core

import (
	"testing"

	"repro/internal/dram"
)

// nuatBins mirrors the 5-bin configuration used in the evaluation:
// timings coarsen with refresh age until the last bin is the default.
func nuatBins() NUATConfig {
	ms := func(m float64) dram.Cycle { return dram.Cycle(m * 800_000) }
	return NUATConfig{
		Bins: []NUATBin{
			{MaxAge: ms(4), Class: dram.TimingClass{RCD: 8, RAS: 20}},
			{MaxAge: ms(8), Class: dram.TimingClass{RCD: 8, RAS: 21}},
			{MaxAge: ms(16), Class: dram.TimingClass{RCD: 9, RAS: 23}},
			{MaxAge: ms(32), Class: dram.TimingClass{RCD: 10, RAS: 25}},
			{MaxAge: ms(64), Class: dram.TimingClass{RCD: 11, RAS: 28}},
		},
		Default: defaultClass,
	}
}

func mustNUAT(t *testing.T) *NUAT {
	t.Helper()
	n, err := NewNUAT(nuatBins())
	if err != nil {
		t.Fatalf("NewNUAT: %v", err)
	}
	return n
}

func TestNUATConfigValidate(t *testing.T) {
	bad := nuatBins()
	bad.Bins = nil
	if _, err := NewNUAT(bad); err == nil {
		t.Error("accepted empty bins")
	}
	bad = nuatBins()
	bad.Bins[0], bad.Bins[1] = bad.Bins[1], bad.Bins[0]
	if _, err := NewNUAT(bad); err == nil {
		t.Error("accepted unsorted bins")
	}
	bad = nuatBins()
	bad.Bins[2].Class.RCD = 7 // faster than younger bin 1 (RCD 8)
	if _, err := NewNUAT(bad); err == nil {
		t.Error("accepted bin faster than a younger bin")
	}
	bad = nuatBins()
	bad.Bins[0].Class.RCD = 99
	if _, err := NewNUAT(bad); err == nil {
		t.Error("accepted class slower than default")
	}
}

func TestNUATBinsByRefreshAge(t *testing.T) {
	n := mustNUAT(t)
	ms := func(m float64) dram.Cycle { return dram.Cycle(m * 800_000) }
	cases := []struct {
		age  dram.Cycle
		want dram.TimingClass
	}{
		{ms(1), dram.TimingClass{RCD: 8, RAS: 20}},
		{ms(4), dram.TimingClass{RCD: 8, RAS: 20}},
		{ms(5), dram.TimingClass{RCD: 8, RAS: 21}},
		{ms(12), dram.TimingClass{RCD: 9, RAS: 23}},
		{ms(30), dram.TimingClass{RCD: 10, RAS: 25}},
		{ms(60), defaultClass},
		{ms(100), defaultClass}, // beyond last bin
	}
	for _, c := range cases {
		if got := n.OnActivate(MakeRowKey(0, 0, 1), 0, c.age); got != c.want {
			t.Errorf("age %d: class = %+v, want %+v", c.age, got, c.want)
		}
	}
}

func TestNUATHitCounting(t *testing.T) {
	n := mustNUAT(t)
	n.OnActivate(MakeRowKey(0, 0, 1), 0, 100)          // young: hit
	n.OnActivate(MakeRowKey(0, 0, 1), 0, 60*800_000)   // default-class bin: miss
	n.OnActivate(MakeRowKey(0, 0, 1), 0, 1000*800_000) // beyond: miss
	s := n.Stats()
	if s.Lookups != 3 || s.Hits != 1 {
		t.Errorf("stats = %+v", s)
	}
	n.ResetStats()
	if n.Stats().Lookups != 0 {
		t.Error("ResetStats did not clear")
	}
	if n.Name() != "NUAT" {
		t.Errorf("Name = %q", n.Name())
	}
}

func TestChargeCacheNUATCombination(t *testing.T) {
	cc := mustCC(t, ccConfig())
	n := mustNUAT(t)
	m := NewChargeCacheNUAT(cc, n)
	if m.Name() != "ChargeCache+NUAT" {
		t.Errorf("Name = %q", m.Name())
	}
	k := MakeRowKey(0, 0, 7)

	// Neither helps: old refresh, not in HCRAC.
	if got := m.OnActivate(k, 0, 100*800_000); got != defaultClass {
		t.Errorf("combined miss = %+v", got)
	}
	// NUAT helps (young refresh), ChargeCache misses.
	got := m.OnActivate(k, 10, 800_000) // 1 ms since refresh -> bin 0: 8/20
	if got != (dram.TimingClass{RCD: 8, RAS: 20}) {
		t.Errorf("NUAT-only class = %+v", got)
	}
	// ChargeCache helps after a PRE: fast class 7/20; combined with NUAT
	// bin 0 (8/20) the minimum is 7/20.
	m.OnPrecharge(k, 20)
	got = m.OnActivate(k, 30, 800_000)
	if got != (dram.TimingClass{RCD: 7, RAS: 20}) {
		t.Errorf("combined class = %+v, want {7 20}", got)
	}
	s := m.Stats()
	if s.Lookups != 3 || s.Hits < 1 {
		t.Errorf("combined stats = %+v", s)
	}
	if m.ChargeCacheStats().Hits != 1 {
		t.Errorf("cc hits = %d", m.ChargeCacheStats().Hits)
	}
	if m.NUATStats().Hits != 2 {
		t.Errorf("nuat hits = %d", m.NUATStats().Hits)
	}
	m.Tick(100)
	m.ResetStats()
	if m.Stats().Lookups != 0 {
		t.Error("ResetStats did not clear")
	}
}
