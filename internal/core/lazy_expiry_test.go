package core

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
)

// The event-driven simulation engine ticks a mechanism only on the
// cycles it executes, with arbitrarily large gaps in between, while the
// reference stepper ticks every controller cycle. The tests here pin
// down the contract that makes that safe: Tick's invalidation catch-up
// is *gap-exact* — for any activate/precharge schedule, ticking lazily
// (only just before each command, however far apart) leaves state and
// statistics identical to ticking eagerly on every cycle.

// lazyVsEager drives two identical ChargeCaches through one randomized
// schedule: `eager` is ticked on every cycle like the stepper, `lazy`
// only at command cycles like the event engine. Returns both.
func lazyVsEager(t *testing.T, cfg ChargeCacheConfig, seed uint64, ops int) (lazy, eager *ChargeCache) {
	t.Helper()
	mk := func() *ChargeCache {
		cc, err := NewChargeCache(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return cc
	}
	lazy, eager = mk(), mk()
	rng := seed | 1
	next := func(mod int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(mod))
	}
	now := dram.Cycle(0)
	for i := 0; i < ops; i++ {
		// Gaps span from back-to-back commands to several IIC
		// intervals, so the catch-up loop runs zero, one and many
		// steps.
		gap := dram.Cycle(next(3 * int(cfg.Duration) / 2))
		for c := now + 1; c <= now+gap; c++ {
			eager.Tick(c) // every cycle, like the stepper
		}
		now += gap
		lazy.Tick(now) // once, like the event engine
		key := MakeRowKey(0, next(8), next(128))
		if next(3) == 0 {
			lazy.OnPrecharge(key, now)
			eager.OnPrecharge(key, now)
		} else {
			lc := lazy.OnActivate(key, now, 0)
			ec := eager.OnActivate(key, now, 0)
			if lc != ec {
				t.Fatalf("op %d (cycle %d): lazy class %+v != eager %+v", i, now, lc, ec)
			}
		}
	}
	return lazy, eager
}

// TestLazyExpiryMatchesEagerIICEC is the randomized-schedule property
// test for the IIC/EC walk: lazily caught-up invalidation must
// invalidate exactly the entries, in exactly the order, that per-cycle
// ticking would, for arbitrary activate/precharge sequences.
func TestLazyExpiryMatchesEagerIICEC(t *testing.T) {
	cfg := ChargeCacheConfig{
		Entries: 64, Assoc: 2, Duration: 4096,
		Fast: fastClass, Default: defaultClass,
		Invalidation: PeriodicIICEC,
	}
	for seed := uint64(1); seed <= 8; seed++ {
		lazy, eager := lazyVsEager(t, cfg, seed*7919, 4000)
		if lazy.Stats() != eager.Stats() {
			t.Fatalf("seed %d: lazy stats %+v != eager %+v", seed, lazy.Stats(), eager.Stats())
		}
		if lazy.Occupancy() != eager.Occupancy() {
			t.Fatalf("seed %d: lazy occupancy %d != eager %d", seed, lazy.Occupancy(), eager.Occupancy())
		}
	}
}

// TestLazyExpiryMatchesEagerExactAndUnlimited covers the other two
// expiry schemes; their expiry is evaluated at lookup time, so gaps
// must be invisible by construction — the test guards regressions that
// would reintroduce tick-rate dependence.
func TestLazyExpiryMatchesEagerExactAndUnlimited(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  ChargeCacheConfig
	}{
		{"exact-expiry", ChargeCacheConfig{
			Entries: 64, Assoc: 2, Duration: 4096,
			Fast: fastClass, Default: defaultClass,
			Invalidation: ExactExpiry,
		}},
		{"unlimited", ChargeCacheConfig{
			Duration: 4096, Fast: fastClass, Default: defaultClass,
			Unlimited: true,
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			lazy, eager := lazyVsEager(t, tc.cfg, 42, 3000)
			if lazy.Stats() != eager.Stats() {
				t.Fatalf("lazy stats %+v != eager %+v", lazy.Stats(), eager.Stats())
			}
		})
	}
}

// TestLazyExpiryQuick drives the IIC/EC property through testing/quick
// with short random schedules, broadening seed coverage cheaply.
func TestLazyExpiryQuick(t *testing.T) {
	cfg := ChargeCacheConfig{
		Entries: 16, Assoc: 2, Duration: 512,
		Fast: fastClass, Default: defaultClass,
		Invalidation: PeriodicIICEC,
	}
	f := func(seed uint32) bool {
		lazy, eager := lazyVsEager(t, cfg, uint64(seed), 300)
		return lazy.Stats() == eager.Stats() && lazy.Occupancy() == eager.Occupancy()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
