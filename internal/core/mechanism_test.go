package core

import (
	"testing"

	"repro/internal/dram"
)

func TestBaselineAlwaysDefault(t *testing.T) {
	b := NewBaseline(defaultClass)
	for i := 0; i < 10; i++ {
		if got := b.OnActivate(MakeRowKey(0, 0, i), dram.Cycle(i), 0); got != defaultClass {
			t.Fatalf("Baseline returned %+v", got)
		}
	}
	if s := b.Stats(); s.Lookups != 10 || s.Hits != 0 {
		t.Errorf("stats = %+v", s)
	}
	b.OnPrecharge(MakeRowKey(0, 0, 0), 0)
	b.Tick(1)
	b.ResetStats()
	if b.Stats().Lookups != 0 {
		t.Error("ResetStats did not clear")
	}
	if b.Name() != "Baseline" {
		t.Errorf("Name = %q", b.Name())
	}
}

func TestLLDRAMAlwaysFast(t *testing.T) {
	l := NewLLDRAM(fastClass)
	for i := 0; i < 5; i++ {
		if got := l.OnActivate(MakeRowKey(0, 0, i), 0, 1<<40); got != fastClass {
			t.Fatalf("LL-DRAM returned %+v", got)
		}
	}
	if s := l.Stats(); s.Hits != 5 || s.HitRate() != 1 {
		t.Errorf("stats = %+v", s)
	}
	if l.Name() != "LL-DRAM" {
		t.Errorf("Name = %q", l.Name())
	}
	l.OnPrecharge(MakeRowKey(0, 0, 0), 0)
	l.Tick(1)
	l.ResetStats()
	if l.Stats().Lookups != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestStatsHitRate(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Error("empty HitRate not 0")
	}
	s := Stats{Lookups: 4, Hits: 3}
	if s.HitRate() != 0.75 {
		t.Errorf("HitRate = %g", s.HitRate())
	}
}

func TestMinClass(t *testing.T) {
	a := dram.TimingClass{RCD: 9, RAS: 25}
	b := dram.TimingClass{RCD: 7, RAS: 28}
	got := minClass(a, b)
	if got.RCD != 7 || got.RAS != 25 {
		t.Errorf("minClass = %+v", got)
	}
}
