package core

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
)

var (
	defaultClass = dram.TimingClass{RCD: 11, RAS: 28}
	fastClass    = dram.TimingClass{RCD: 7, RAS: 20}
)

func ccConfig() ChargeCacheConfig {
	return ChargeCacheConfig{
		Entries:  128,
		Assoc:    2,
		Duration: 800_000, // 1 ms at 800 MHz
		Fast:     fastClass,
		Default:  defaultClass,
	}
}

func mustCC(t *testing.T, cfg ChargeCacheConfig) *ChargeCache {
	t.Helper()
	cc, err := NewChargeCache(cfg)
	if err != nil {
		t.Fatalf("NewChargeCache: %v", err)
	}
	return cc
}

func TestChargeCacheConfigValidate(t *testing.T) {
	bad := ccConfig()
	bad.Entries = 0
	if _, err := NewChargeCache(bad); err == nil {
		t.Error("accepted zero entries")
	}
	bad = ccConfig()
	bad.Duration = 0
	if _, err := NewChargeCache(bad); err == nil {
		t.Error("accepted zero duration")
	}
	bad = ccConfig()
	bad.Fast = dram.TimingClass{RCD: 12, RAS: 20} // slower than default RCD
	if _, err := NewChargeCache(bad); err == nil {
		t.Error("accepted fast class slower than default")
	}
	good := ccConfig()
	good.Unlimited = true
	good.Entries = 0 // ignored
	if _, err := NewChargeCache(good); err != nil {
		t.Errorf("rejected unlimited config: %v", err)
	}
}

func TestChargeCacheMissThenHit(t *testing.T) {
	cc := mustCC(t, ccConfig())
	k := MakeRowKey(0, 2, 100)

	// First activation: miss, default timings.
	if got := cc.OnActivate(k, 0, 0); got != defaultClass {
		t.Errorf("first ACT class = %+v, want default", got)
	}
	// Row closes: inserted.
	cc.OnPrecharge(k, 50)
	// Re-activation shortly after: hit, fast timings.
	if got := cc.OnActivate(k, 100, 0); got != fastClass {
		t.Errorf("second ACT class = %+v, want fast", got)
	}
	s := cc.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.Inserts != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestChargeCacheRowNotInsertedBeforePrecharge(t *testing.T) {
	cc := mustCC(t, ccConfig())
	k := MakeRowKey(0, 0, 1)
	cc.OnActivate(k, 0, 0)
	// Second ACT without an intervening PRE (e.g. another bank's row):
	// still a miss, the row address is only inserted on PRE.
	if got := cc.OnActivate(k, 10, 0); got != defaultClass {
		t.Errorf("ACT before any PRE hit: %+v", got)
	}
}

func TestChargeCacheIICECInvalidation(t *testing.T) {
	cfg := ccConfig()
	cfg.Entries = 4
	cfg.Assoc = 2
	cfg.Duration = 400 // C/k = 100 cycles per entry
	cc := mustCC(t, cfg)

	k := MakeRowKey(0, 1, 9)
	cc.OnPrecharge(k, 0)
	if cc.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", cc.Occupancy())
	}
	// After a full caching duration of ticks, every entry has been
	// walked once by EC, so the entry must be gone.
	for now := dram.Cycle(1); now <= 400; now++ {
		cc.Tick(now)
	}
	if cc.Occupancy() != 0 {
		t.Errorf("occupancy = %d after full invalidation walk, want 0", cc.Occupancy())
	}
	if got := cc.OnActivate(k, 401, 0); got != defaultClass {
		t.Errorf("ACT after expiry returned %+v, want default", got)
	}
	if cc.Stats().Invalidations == 0 {
		t.Error("no invalidations recorded")
	}
}

func TestChargeCacheTickCatchUp(t *testing.T) {
	cfg := ccConfig()
	cfg.Entries = 4
	cfg.Duration = 400
	cc := mustCC(t, cfg)
	cc.OnPrecharge(MakeRowKey(0, 0, 1), 0)
	// One big jump (e.g. after fast-forward) must behave like many
	// small ticks.
	cc.Tick(400)
	if cc.Occupancy() != 0 {
		t.Errorf("occupancy = %d after catch-up tick, want 0", cc.Occupancy())
	}
}

func TestChargeCacheExactExpiry(t *testing.T) {
	cfg := ccConfig()
	cfg.Invalidation = ExactExpiry
	cfg.Duration = 1000
	cc := mustCC(t, cfg)
	k := MakeRowKey(0, 0, 3)
	cc.OnPrecharge(k, 100)
	if got := cc.OnActivate(k, 1100, 0); got != fastClass {
		t.Errorf("hit within duration returned %+v", got)
	}
	cc.OnPrecharge(k, 1100)
	if got := cc.OnActivate(k, 2101, 0); got != defaultClass {
		t.Errorf("stale entry (age 1001) returned %+v, want default", got)
	}
	if cc.Stats().Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", cc.Stats().Invalidations)
	}
}

func TestChargeCacheUnlimited(t *testing.T) {
	cfg := ccConfig()
	cfg.Unlimited = true
	cc := mustCC(t, cfg)
	// Insert far more rows than any bounded table would hold.
	for i := 0; i < 100_000; i++ {
		cc.OnPrecharge(MakeRowKey(0, i%8, i), dram.Cycle(i))
	}
	hits := 0
	for i := 0; i < 100_000; i++ {
		if cc.OnActivate(MakeRowKey(0, i%8, i), 150_000, 0) == fastClass {
			hits++
		}
	}
	// Entries inserted at cycle >= 150000-Duration never expired.
	if hits != 100_000 {
		t.Errorf("unlimited hits = %d, want all 100000", hits)
	}
	// Expired entries miss and are dropped.
	cfg2 := ccConfig()
	cfg2.Unlimited = true
	cfg2.Duration = 10
	cc2 := mustCC(t, cfg2)
	cc2.OnPrecharge(MakeRowKey(0, 0, 1), 0)
	if cc2.OnActivate(MakeRowKey(0, 0, 1), 11, 0) != defaultClass {
		t.Error("expired unlimited entry still hit")
	}
	if cc2.Occupancy() != 0 {
		t.Error("expired unlimited entry not removed")
	}
}

func TestChargeCacheEvictionsCounted(t *testing.T) {
	cfg := ccConfig()
	cfg.Entries = 2
	cfg.Assoc = 2
	cc := mustCC(t, cfg)
	for i := 0; i < 10; i++ {
		cc.OnPrecharge(MakeRowKey(0, 0, i), dram.Cycle(i))
	}
	if cc.Stats().Evictions != 8 {
		t.Errorf("evictions = %d, want 8", cc.Stats().Evictions)
	}
}

func TestChargeCacheResetStatsKeepsContents(t *testing.T) {
	cc := mustCC(t, ccConfig())
	k := MakeRowKey(0, 0, 1)
	cc.OnPrecharge(k, 0)
	cc.ResetStats()
	if got := cc.Stats(); got != (Stats{}) {
		t.Errorf("stats after reset = %+v", got)
	}
	if cc.OnActivate(k, 10, 0) != fastClass {
		t.Error("entry lost by ResetStats")
	}
}

// Property: ChargeCache never returns a class slower than the default or
// faster than the fast class, regardless of the operation sequence.
func TestChargeCacheClassBounds(t *testing.T) {
	cc := mustCC(t, ccConfig())
	now := dram.Cycle(0)
	f := func(row uint16, pre bool, gap uint16) bool {
		now += dram.Cycle(gap)
		k := MakeRowKey(0, int(row)%8, int(row))
		if pre {
			cc.OnPrecharge(k, now)
			return true
		}
		got := cc.OnActivate(k, now, 0)
		return got == fastClass || got == defaultClass
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: with IIC/EC, no entry survives longer than 2x the caching
// duration (the walk guarantees every entry is cleared once per C; an
// entry inserted right after its slot was walked lives at most ~C more).
func TestChargeCacheNoEntryOutlivesTwoDurations(t *testing.T) {
	cfg := ccConfig()
	cfg.Entries = 8
	cfg.Assoc = 2
	cfg.Duration = 80
	cc := mustCC(t, cfg)
	k := MakeRowKey(0, 0, 42)
	cc.OnPrecharge(k, 0)
	for now := dram.Cycle(1); now <= 2*cfg.Duration; now++ {
		cc.Tick(now)
	}
	if cc.OnActivate(k, 2*cfg.Duration+1, 0) == fastClass {
		t.Error("entry survived two caching durations")
	}
}

func TestInvalidationPolicyString(t *testing.T) {
	if PeriodicIICEC.String() != "iic-ec" || ExactExpiry.String() != "exact-expiry" {
		t.Error("InvalidationPolicy.String misbehaves")
	}
}

func TestChargeCacheName(t *testing.T) {
	cc := mustCC(t, ccConfig())
	if cc.Name() != "ChargeCache" {
		t.Errorf("Name = %q", cc.Name())
	}
	if cc.Config().Entries != 128 {
		t.Errorf("Config().Entries = %d", cc.Config().Entries)
	}
}
