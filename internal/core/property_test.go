package core

import (
	"testing"
	"testing/quick"

	"repro/internal/dram"
)

// TestIICECVsExactExpiryAgreement drives both invalidation schemes with
// the same randomized access stream and checks two things. First, the
// paper's safety claim (Section 4.2.3): with IIC/EC, "any valid entry in
// the HCRAC indeed corresponds to a highly-charged row" — every IIC/EC
// hit must be to a row precharged at most one caching duration ago
// (verified against an independent shadow of precharge times). Second,
// the performance claim: premature invalidation costs only a small
// fraction of hits versus exact expiry.
func TestIICECVsExactExpiryAgreement(t *testing.T) {
	mk := func(policy InvalidationPolicy) *ChargeCache {
		cc, err := NewChargeCache(ChargeCacheConfig{
			Entries:      64,
			Assoc:        2,
			Duration:     10_000,
			Fast:         fastClass,
			Default:      defaultClass,
			Invalidation: policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cc
	}
	iicec := mk(PeriodicIICEC)
	exact := mk(ExactExpiry)

	rng := uint64(2024)
	next := func(mod int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(mod))
	}
	now := dram.Cycle(0)
	lastPre := map[RowKey]dram.Cycle{} // independent shadow of precharges
	const duration = 10_000
	for i := 0; i < 200_000; i++ {
		now += dram.Cycle(next(40))
		key := MakeRowKey(0, next(8), next(64))
		iicec.Tick(now)
		exact.Tick(now)
		if next(3) == 0 {
			iicec.OnPrecharge(key, now)
			exact.OnPrecharge(key, now)
			lastPre[key] = now
			continue
		}
		if iicec.OnActivate(key, now, 0) == fastClass {
			pre, ok := lastPre[key]
			if !ok {
				t.Fatalf("access %d: IIC/EC hit on never-precharged row %v", i, key)
			}
			if now-pre > duration {
				t.Fatalf("access %d: IIC/EC hit on row %v precharged %d cycles ago (> %d)",
					i, key, now-pre, duration)
			}
		}
		exact.OnActivate(key, now, 0)
	}
	si, se := iicec.Stats(), exact.Stats()
	if si.Hits > se.Hits {
		t.Fatalf("IIC/EC hits %d exceed exact %d", si.Hits, se.Hits)
	}
	// Premature invalidation must cost only a bounded fraction of hits.
	// Uniform-random reuse intervals (this stream) are the worst case
	// for the scheme — real workloads re-activate far inside the
	// duration and lose almost nothing (BenchmarkAblationInvalidation
	// measures the end-to-end effect).
	if se.Hits > 0 {
		loss := 1 - float64(si.Hits)/float64(se.Hits)
		if loss > 0.35 {
			t.Errorf("IIC/EC loses %.1f%% of hits vs exact expiry, want < 35%%", 100*loss)
		}
	}
	if si.Invalidations == 0 {
		t.Error("IIC/EC recorded no invalidations")
	}
}

// Property: ChargeCache behaviour is deterministic — two instances fed
// the same stream report identical stats.
func TestChargeCacheDeterministic(t *testing.T) {
	f := func(seed uint16) bool {
		mk := func() *ChargeCache {
			cc, _ := NewChargeCache(ChargeCacheConfig{
				Entries: 32, Assoc: 2, Duration: 5000,
				Fast: fastClass, Default: defaultClass,
			})
			return cc
		}
		a, b := mk(), mk()
		rng := uint64(seed) + 1
		now := dram.Cycle(0)
		for i := 0; i < 2000; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			now += dram.Cycle(rng % 50)
			key := MakeRowKey(0, int(rng%8), int(rng>>8%128))
			a.Tick(now)
			b.Tick(now)
			if rng%4 == 0 {
				a.OnPrecharge(key, now)
				b.OnPrecharge(key, now)
			} else {
				if a.OnActivate(key, now, 0) != b.OnActivate(key, now, 0) {
					return false
				}
			}
		}
		return a.Stats() == b.Stats()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: occupancy never exceeds capacity for any operation sequence.
func TestChargeCacheOccupancyBound(t *testing.T) {
	cc := mustCC(t, ChargeCacheConfig{
		Entries: 16, Assoc: 2, Duration: 1000,
		Fast: fastClass, Default: defaultClass,
	})
	now := dram.Cycle(0)
	f := func(row uint16, gap uint8) bool {
		now += dram.Cycle(gap)
		cc.Tick(now)
		cc.OnPrecharge(MakeRowKey(0, int(row)%8, int(row)), now)
		return cc.Occupancy() <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
