// Package core implements the paper's primary contribution: activation-
// latency mechanisms that live in the memory controller and choose, for
// every ACT command, which timing class (tRCD, tRAS) to apply.
//
// The mechanisms provided are:
//
//   - Baseline: always the DDR3 specification timings.
//   - ChargeCache: the paper's proposal. A small tag-only cache in the
//     memory controller (the Highly-Charged Row Address Cache, HCRAC)
//     remembers rows that were recently precharged; a subsequent ACT that
//     hits in the HCRAC within the caching duration is issued with
//     lowered tRCD/tRAS, because the row's cells are still highly
//     charged from the previous activation.
//   - NUAT (Shin et al., HPCA 2014): rows refreshed recently are highly
//     charged, so activations are binned by time-since-last-refresh.
//   - ChargeCacheNUAT: the combination (best class of the two).
//   - LLDRAM: an idealized low-latency DRAM where every activation uses
//     the lowered timings (ChargeCache with a 100% hit rate).
//
// One mechanism instance serves one channel, mirroring the paper's
// replication of ChargeCache per memory channel.
package core

import (
	"fmt"

	"repro/internal/dram"
)

// RowKey identifies a DRAM row within one channel (rank, bank, row packed
// into one integer).
type RowKey uint64

// MakeRowKey packs (rank, bank, row) into a RowKey.
func MakeRowKey(rank, bank, row int) RowKey {
	return RowKey(uint64(rank)<<40 | uint64(bank)<<32 | uint64(uint32(row)))
}

// Rank extracts the rank from the key.
func (k RowKey) Rank() int { return int(k >> 40) }

// Bank extracts the bank from the key.
func (k RowKey) Bank() int { return int(k>>32) & 0xff }

// Row extracts the row from the key.
func (k RowKey) Row() int { return int(uint32(k)) }

// String implements fmt.Stringer.
func (k RowKey) String() string {
	return fmt.Sprintf("r%d/b%d/row%d", k.Rank(), k.Bank(), k.Row())
}

// Stats counts mechanism events. Lookups and Hits are per-ACT; Inserts
// are per-PRE; Evictions are capacity replacements; Invalidations are
// timed removals (IIC/EC walk or expiry).
type Stats struct {
	Lookups       uint64
	Hits          uint64
	Inserts       uint64
	Evictions     uint64
	Invalidations uint64
}

// HitRate returns Hits/Lookups, or 0 with no lookups.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Mechanism decides the timing class for each activation and observes the
// command stream to maintain its state. Implementations are per-channel
// and not safe for concurrent use.
type Mechanism interface {
	// Name returns a short identifier ("ChargeCache", "NUAT", ...).
	Name() string

	// OnActivate is invoked when the controller issues an ACT for the
	// row identified by key. refreshAge is the time since the row was
	// last refreshed (used by NUAT; ChargeCache ignores it). It returns
	// the timing class the ACT must be issued with.
	OnActivate(key RowKey, now, refreshAge dram.Cycle) dram.TimingClass

	// OnPrecharge is invoked when the controller issues a PRE closing
	// the row identified by key.
	OnPrecharge(key RowKey, now dram.Cycle)

	// Tick advances mechanism-internal time to now. Callers may tick
	// every controller cycle (the reference stepper) or only on the
	// cycles they execute, with arbitrary gaps (the event-driven
	// engine). Implementations must be gap-exact: as long as no
	// OnActivate/OnPrecharge happens inside a gap, state and stats
	// after Tick(now) must not depend on how many intermediate Ticks
	// occurred. ChargeCache's IIC/EC invalidation walk, for example,
	// catches up lazily instead of scanning per cycle; the property
	// tests in lazy_expiry_test.go enforce the contract.
	Tick(now dram.Cycle)

	// Stats returns the event counters accumulated so far.
	Stats() Stats

	// ResetStats clears the counters (e.g. after warm-up) without
	// touching mechanism state.
	ResetStats()
}

// Baseline is the commodity-DRAM mechanism: every ACT uses the
// specification timings.
type Baseline struct {
	class dram.TimingClass
	stats Stats
}

// NewBaseline returns a Baseline issuing every ACT with class.
func NewBaseline(class dram.TimingClass) *Baseline {
	return &Baseline{class: class}
}

// Name implements Mechanism.
func (b *Baseline) Name() string { return "Baseline" }

// OnActivate implements Mechanism.
func (b *Baseline) OnActivate(RowKey, dram.Cycle, dram.Cycle) dram.TimingClass {
	b.stats.Lookups++
	return b.class
}

// OnPrecharge implements Mechanism.
func (b *Baseline) OnPrecharge(RowKey, dram.Cycle) {}

// Tick implements Mechanism.
func (b *Baseline) Tick(dram.Cycle) {}

// Stats implements Mechanism.
func (b *Baseline) Stats() Stats { return b.stats }

// ResetStats implements Mechanism.
func (b *Baseline) ResetStats() { b.stats = Stats{} }

// LLDRAM is the idealized comparison point: every activation, to any row
// at any time, uses the lowered timing class. It is equivalent to
// ChargeCache with a 100% hit rate (Section 6 of the paper).
type LLDRAM struct {
	fast  dram.TimingClass
	stats Stats
}

// NewLLDRAM returns the idealized low-latency DRAM mechanism.
func NewLLDRAM(fast dram.TimingClass) *LLDRAM {
	return &LLDRAM{fast: fast}
}

// Name implements Mechanism.
func (l *LLDRAM) Name() string { return "LL-DRAM" }

// OnActivate implements Mechanism.
func (l *LLDRAM) OnActivate(RowKey, dram.Cycle, dram.Cycle) dram.TimingClass {
	l.stats.Lookups++
	l.stats.Hits++
	return l.fast
}

// OnPrecharge implements Mechanism.
func (l *LLDRAM) OnPrecharge(RowKey, dram.Cycle) {}

// Tick implements Mechanism.
func (l *LLDRAM) Tick(dram.Cycle) {}

// Stats implements Mechanism.
func (l *LLDRAM) Stats() Stats { return l.stats }

// ResetStats implements Mechanism.
func (l *LLDRAM) ResetStats() { l.stats = Stats{} }

// minClass returns the element-wise minimum of two timing classes (the
// more aggressive of each parameter). Used by the combined mechanism.
func minClass(a, b dram.TimingClass) dram.TimingClass {
	c := a
	if b.RCD < c.RCD {
		c.RCD = b.RCD
	}
	if b.RAS < c.RAS {
		c.RAS = b.RAS
	}
	return c
}

// Interface conformance checks.
var (
	_ Mechanism = (*Baseline)(nil)
	_ Mechanism = (*LLDRAM)(nil)
	_ Mechanism = (*ChargeCache)(nil)
	_ Mechanism = (*NUAT)(nil)
	_ Mechanism = (*ChargeCacheNUAT)(nil)
)
