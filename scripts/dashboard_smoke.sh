#!/usr/bin/env bash
# Headless smoke test of the daemon's observability surface: boots a
# scratch ccsimd, checks the embedded dashboard ships (with the live
# EventSource wiring and the per-worker table), runs one phase-profiled
# analysis job through ccsim -server, and drives the endpoints the
# dashboard polls — /v1/analysis/{id}, its SSE stream, and /metrics
# with the per-worker phase breakdown. No browser required; the
# dashboard's script is syntax-checked with node when available.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${PORT:-8397}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "dashboard-smoke: FAIL: $*" >&2; exit 1; }

go build -o "$TMP/ccsimd" ./cmd/ccsimd
go build -o "$TMP/ccsim" ./cmd/ccsim

"$TMP/ccsimd" -addr "127.0.0.1:${PORT}" -workers 2 \
  -results "$TMP/results.json" >"$TMP/daemon.log" 2>&1 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  curl -fsS "$BASE/readyz" >/dev/null 2>&1 && break
  kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$TMP/daemon.log" >&2; fail "daemon died during startup"; }
  sleep 0.1
done
curl -fsS "$BASE/readyz" >/dev/null || fail "daemon never became ready"

# The dashboard page must ship with the live-telemetry wiring embedded.
curl -fsS "$BASE/dashboard" >"$TMP/dashboard.html"
grep -q '<title>ccsimd dashboard</title>' "$TMP/dashboard.html" || fail "dashboard page missing title"
grep -q 'EventSource' "$TMP/dashboard.html" || fail "dashboard lacks the SSE live-sparkline wiring"
grep -q 'id="workers"' "$TMP/dashboard.html" || fail "dashboard lacks the per-worker table"

# Its script must at least parse.
if command -v node >/dev/null 2>&1; then
  sed -n '/<script>/,/<\/script>/p' "$TMP/dashboard.html" | sed '1d;$d' >"$TMP/dashboard.js"
  node --check "$TMP/dashboard.js" || fail "dashboard script does not parse"
fi

# One phase-profiled analysis run through the daemon, via the CLI the
# docs advertise.
"$TMP/ccsim" -workloads lbm -mechanism chargecache \
  -instructions 20000 -warmup 10000 \
  -analysis -phase-profile -server "$BASE" >"$TMP/run.out" 2>&1 \
  || { cat "$TMP/run.out" >&2; fail "ccsim -server run failed"; }
grep -q 'phases (1 in' "$TMP/run.out" || fail "ccsim printed no phase table"

id="$(curl -fsS "$BASE/v1/jobs" | grep -o '"id":"job-[0-9]*"' | head -1 | cut -d'"' -f4)"
[ -n "$id" ] || fail "no job visible on /v1/jobs"

curl -fsS "$BASE/v1/analysis/$id" >"$TMP/analysis.json"
grep -q '"Phases"' "$TMP/analysis.json" || fail "analysis report carries no phase profile"

# The SSE stream a finished job replays: batches then a done frame.
curl -fsS -N --max-time 10 "$BASE/v1/analysis/$id/stream" >"$TMP/stream.sse" || true
grep -q '^event: ' "$TMP/stream.sse" || fail "analysis stream sent no frames"
grep -q '^event: done' "$TMP/stream.sse" || fail "analysis stream never completed"

# The per-worker phase breakdown the dashboard's workers table renders.
curl -fsS "$BASE/metrics" >"$TMP/metrics.json"
grep -q '"workers"' "$TMP/metrics.json" || fail "/metrics has no per-worker block"
grep -q '"llc-lookup"' "$TMP/metrics.json" || fail "/metrics per-worker block has no phase attribution"

kill "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
echo "dashboard-smoke: OK"
