// Custommech: plug a custom activation-latency mechanism into the memory
// controller through the public Mechanism interface.
//
// The paper's future-work section suggests reuse-aware HCRAC management
// (citing the Evicted-Address Filter) for workloads like mcf whose row
// reuse distance exceeds the HCRAC capacity. This example implements a
// bypass-on-first-touch ChargeCache: a row address is only inserted into
// the HCRAC on its second precharge within the caching duration, so
// single-use rows cannot thrash the table.
//
//	go run ./examples/custommech
package main

import (
	"fmt"
	"log"

	ccsim "repro"
)

// filteredChargeCache wraps a ChargeCache with first-touch bypass: the
// filter remembers recently-precharged rows in a small direct-mapped
// table; only rows precharged twice in a row-reuse window are inserted.
type filteredChargeCache struct {
	inner *ccsim.ChargeCacheMechanism
	seen  []ccsim.RowKey // direct-mapped filter of recent precharges
}

func newFiltered(inner *ccsim.ChargeCacheMechanism, filterSize int) *filteredChargeCache {
	return &filteredChargeCache{
		inner: inner,
		seen:  make([]ccsim.RowKey, filterSize),
	}
}

func (f *filteredChargeCache) Name() string { return "FilteredChargeCache" }

func (f *filteredChargeCache) OnActivate(key ccsim.RowKey, now, refreshAge ccsim.Cycle) ccsim.TimingClass {
	return f.inner.OnActivate(key, now, refreshAge)
}

func (f *filteredChargeCache) OnPrecharge(key ccsim.RowKey, now ccsim.Cycle) {
	slot := int(uint64(key)*0x9e3779b97f4a7c15>>33) % len(f.seen)
	if f.seen[slot] == key {
		// Second precharge of this row recently: worth caching.
		f.inner.OnPrecharge(key, now)
		return
	}
	f.seen[slot] = key
}

func (f *filteredChargeCache) Tick(now ccsim.Cycle)        { f.inner.Tick(now) }
func (f *filteredChargeCache) Stats() ccsim.MechanismStats { return f.inner.Stats() }
func (f *filteredChargeCache) ResetStats()                 { f.inner.ResetStats() }

var _ ccsim.Mechanism = (*filteredChargeCache)(nil)

func main() {
	log.SetFlags(0)

	// mcf is the paper's poster child for HCRAC thrashing: huge row
	// reuse distance, near-zero hit rate at 128 entries.
	const workload = "mcf"
	const warmup, run = 1_000_000, 400_000

	baseCfg := ccsim.DefaultConfig(workload)
	baseCfg.WarmupInstructions = warmup
	baseCfg.RunInstructions = run
	base, err := ccsim.Run(baseCfg)
	if err != nil {
		log.Fatal(err)
	}

	plain := baseCfg
	plain.Mechanism = ccsim.ChargeCache
	plainRes, err := ccsim.Run(plain)
	if err != nil {
		log.Fatal(err)
	}

	custom := baseCfg
	custom.Mechanism = ccsim.Custom
	custom.CustomMechanism = func(channel int, spec ccsim.Spec, fast, def ccsim.TimingClass) (ccsim.Mechanism, error) {
		inner, err := ccsim.NewChargeCache(ccsim.ChargeCacheConfig{
			Entries:  128,
			Assoc:    2,
			Duration: spec.MillisecondsToCycles(1),
			Fast:     fast,
			Default:  def,
		})
		if err != nil {
			return nil, err
		}
		return newFiltered(inner, 4096), nil
	}
	customRes, err := ccsim.Run(custom)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (high row-reuse distance)\n\n", workload)
	fmt.Printf("%-22s %8s %10s %10s\n", "mechanism", "IPC", "gain", "hit rate")
	fmt.Printf("%-22s %8.3f %10s %10s\n", "Baseline", base.PerCore[0].IPC, "-", "-")
	fmt.Printf("%-22s %8.3f %+9.2f%% %9.1f%%\n", "ChargeCache",
		plainRes.PerCore[0].IPC,
		100*(plainRes.PerCore[0].IPC/base.PerCore[0].IPC-1), 100*plainRes.HitRate())
	fmt.Printf("%-22s %8.3f %+9.2f%% %9.1f%%\n", "FilteredChargeCache",
		customRes.PerCore[0].IPC,
		100*(customRes.PerCore[0].IPC/base.PerCore[0].IPC-1), 100*customRes.HitRate())
	fmt.Println("\nThe filter keeps single-use rows out of the HCRAC, so the entries")
	fmt.Println("that do get cached are the ones with genuine reuse.")
}
