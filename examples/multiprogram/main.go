// Multiprogram: reproduce the paper's headline experiment shape on one
// 8-core multiprogrammed mix — weighted speedup of NUAT, ChargeCache,
// their combination and the LL-DRAM bound over the DDR3 baseline
// (Figure 7b), plus the DRAM energy effect (Figure 8).
//
//	go run ./examples/multiprogram
package main

import (
	"fmt"
	"log"

	ccsim "repro"
)

func main() {
	log.SetFlags(0)

	mix := ccsim.EightCoreMixes(42, 1)[0]
	fmt.Printf("mix: %v\n\n", mix)

	const (
		warmup = 400_000
		run    = 300_000
	)

	// Weighted speedup needs each application's IPC when run alone on
	// the same memory system.
	alone := make([]float64, len(mix))
	aloneByName := map[string]float64{}
	for i, name := range mix {
		if ipc, ok := aloneByName[name]; ok {
			alone[i] = ipc
			continue
		}
		cfg := ccsim.DefaultConfig(name)
		cfg.Channels = 2
		cfg.RowPolicy = ccsim.ClosedRow
		cfg.WarmupInstructions = warmup
		cfg.RunInstructions = run
		res, err := ccsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		aloneByName[name] = res.PerCore[0].IPC
		alone[i] = res.PerCore[0].IPC
	}

	runMix := func(mech ccsim.MechanismKind) ccsim.Result {
		cfg := ccsim.DefaultConfig(mix...)
		cfg.Mechanism = mech
		cfg.WarmupInstructions = warmup
		cfg.RunInstructions = run
		res, err := ccsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := runMix(ccsim.Baseline)
	wsBase, err := ccsim.WeightedSpeedup(base.IPCs(), alone)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %16s %10s %12s %12s\n", "mechanism", "weighted speedup", "gain", "hit rate", "DRAM energy")
	fmt.Printf("%-18s %16.3f %10s %12s %11.3fmJ\n", "Baseline", wsBase, "-", "-", base.Energy.TotalMJ())
	for _, mech := range []ccsim.MechanismKind{ccsim.NUAT, ccsim.ChargeCache, ccsim.ChargeCacheNUAT, ccsim.LLDRAM} {
		res := runMix(mech)
		ws, err := ccsim.WeightedSpeedup(res.IPCs(), alone)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %16.3f %+9.2f%% %11.1f%% %11.3fmJ\n",
			mech, ws, 100*(ws/wsBase-1), 100*res.HitRate(), res.Energy.TotalMJ())
	}
}
