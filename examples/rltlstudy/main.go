// RLTL study: measure Row-Level Temporal Locality (the paper's Section 3
// observation) for a handful of workloads under both row policies, and
// contrast it with the refresh-based locality NUAT relies on.
//
//	go run ./examples/rltlstudy
package main

import (
	"fmt"
	"log"

	ccsim "repro"
)

func main() {
	log.SetFlags(0)

	workloads := []string{"STREAMcopy", "tpch17", "mcf", "hmmer"}
	for _, policy := range []ccsim.RowPolicy{ccsim.OpenRow, ccsim.ClosedRow} {
		fmt.Printf("== %v ==\n", policy)
		fmt.Printf("%-12s", "workload")
		cfg0 := ccsim.DefaultConfig(workloads[0])
		for _, ms := range cfg0.RLTLIntervalsMs {
			fmt.Printf(" %8.3gms", ms)
		}
		fmt.Printf(" %10s\n", "refresh8ms")

		for _, name := range workloads {
			cfg := ccsim.DefaultConfig(name)
			cfg.RowPolicy = policy
			cfg.WarmupInstructions = 1_200_000
			cfg.RunInstructions = 400_000
			cfg.TrackRLTL = true
			res, err := ccsim.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s", name)
			for _, f := range res.RLTL.Fractions {
				fmt.Printf(" %9.1f%%", 100*f)
			}
			fmt.Printf(" %9.1f%%\n", 100*res.RLTL.RefreshFraction)
		}
		fmt.Println()
	}
	fmt.Println("Reading: high values in the small-interval columns mean rows are")
	fmt.Println("re-activated shortly after being closed (bank conflicts), which is")
	fmt.Println("exactly the charge ChargeCache exploits; the refresh8ms column is")
	fmt.Println("the much smaller locality NUAT can exploit.")
}
