// Quickstart: simulate one workload on commodity DDR3 and again with
// ChargeCache in the memory controller, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	ccsim "repro"
)

func main() {
	log.SetFlags(0)

	const workload = "lbm" // interleaved-stream workload with high RLTL

	base := ccsim.DefaultConfig(workload)
	base.WarmupInstructions = 1_000_000
	base.RunInstructions = 500_000

	baseline, err := ccsim.Run(base)
	if err != nil {
		log.Fatal(err)
	}

	cc := base
	cc.Mechanism = ccsim.ChargeCache
	withCC, err := ccsim.Run(cc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload:           %s\n", workload)
	fmt.Printf("baseline IPC:       %.3f\n", baseline.PerCore[0].IPC)
	fmt.Printf("ChargeCache IPC:    %.3f (%+.2f%%)\n",
		withCC.PerCore[0].IPC,
		100*(withCC.PerCore[0].IPC/baseline.PerCore[0].IPC-1))
	fmt.Printf("HCRAC hit rate:     %.1f%% (%d of %d activations served fast)\n",
		100*withCC.HitRate(), withCC.Controller.FastActivations, withCC.Controller.Activations)
	fmt.Printf("DRAM energy:        %.3f mJ -> %.3f mJ (%.1f%% saved)\n",
		baseline.Energy.TotalMJ(), withCC.Energy.TotalMJ(),
		100*(1-withCC.Energy.Total()/baseline.Energy.Total()))
}
