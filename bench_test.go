package ccsim

// This file holds one benchmark per table and figure of the paper's
// evaluation, plus ablation benches for the design decisions listed in
// DESIGN.md §4. Each benchmark runs a scaled-down version of the
// corresponding experiment and reports its headline quantity as a
// benchmark metric (ReportMetric), so
//
//	go test -bench=. -benchmem
//
// regenerates a compact summary of the whole evaluation. cmd/experiments
// produces the full tables at larger scales.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/memctrl"
	"repro/internal/sim"
)

// benchScale is deliberately small: benchmarks exist to regenerate the
// result shape quickly and repeatedly.
func benchScale() experiments.Scale {
	s := experiments.Quick()
	s.Mixes = 2
	s.SweepMixes = 1
	return s
}

func reportPct(b *testing.B, name string, v float64) {
	b.Helper()
	b.ReportMetric(100*v, name)
}

// BenchmarkFig3RLTLSingleCore regenerates Figure 3a: average 8ms-RLTL
// vs the fraction of activations within 8ms of a refresh (single-core).
func BenchmarkFig3RLTLSingleCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchScale().Fig3(false)
		if err != nil {
			b.Fatal(err)
		}
		var rltl, refresh float64
		idx8 := len(rows[0].IntervalsMs) - 2 // 8ms is second to last
		for _, r := range rows {
			rltl += r.Fractions[idx8]
			refresh += r.RefreshFraction
		}
		reportPct(b, "rltl8ms%", rltl/float64(len(rows)))
		reportPct(b, "refresh8ms%", refresh/float64(len(rows)))
	}
}

// BenchmarkFig3RLTLEightCore regenerates Figure 3b (eight-core mixes).
func BenchmarkFig3RLTLEightCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchScale().Fig3(true)
		if err != nil {
			b.Fatal(err)
		}
		var rltl, refresh float64
		idx8 := len(rows[0].IntervalsMs) - 2
		for _, r := range rows {
			rltl += r.Fractions[idx8]
			refresh += r.RefreshFraction
		}
		reportPct(b, "rltl8ms%", rltl/float64(len(rows)))
		reportPct(b, "refresh8ms%", refresh/float64(len(rows)))
	}
}

// BenchmarkFig4RLTLIntervals regenerates Figure 4: the average RLTL at
// the shortest (0.125ms) and longest (32ms) tracked intervals under the
// open-row policy.
func BenchmarkFig4RLTLIntervals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchScale().Fig4(false, memctrl.OpenRow)
		if err != nil {
			b.Fatal(err)
		}
		var lo, hi float64
		for _, r := range rows {
			lo += r.Fractions[0]
			hi += r.Fractions[len(r.Fractions)-1]
		}
		reportPct(b, "rltl0.125ms%", lo/float64(len(rows)))
		reportPct(b, "rltl32ms%", hi/float64(len(rows)))
	}
}

// BenchmarkFig6Bitline regenerates Figure 6: the tRCD/tRAS reductions a
// fully-charged cell allows versus the worst case.
func BenchmarkFig6Bitline(b *testing.B) {
	model, err := NewBitlineModel()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rcdF, rasF := model.ActivateLatency(0.001)
		rcdW, rasW := model.ActivateLatency(64)
		b.ReportMetric(rcdW-rcdF, "tRCDred_ns")
		b.ReportMetric(rasW-rasF, "tRASred_ns")
	}
}

// BenchmarkTable2Timings regenerates Table 2: the 1ms caching-duration
// timings in nanoseconds.
func BenchmarkTable2Timings(b *testing.B) {
	model, err := NewBitlineModel()
	if err != nil {
		b.Fatal(err)
	}
	spec := DDR31600(1)
	for i := 0; i < b.N; i++ {
		row, err := model.TimingsFor(spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.TRCDNs, "tRCD1ms_ns")
		b.ReportMetric(row.TRASNs, "tRAS1ms_ns")
	}
}

// BenchmarkFig7SingleCore regenerates Figure 7a: average single-core
// speedups of each mechanism over the DDR3 baseline.
func BenchmarkFig7SingleCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchScale().Fig7Single()
		if err != nil {
			b.Fatal(err)
		}
		avg := map[sim.MechanismKind]float64{}
		for _, r := range rows {
			for k, v := range r.Speedup {
				avg[k] += v
			}
		}
		n := float64(len(rows))
		reportPct(b, "nuat%", avg[sim.NUAT]/n)
		reportPct(b, "cc%", avg[sim.ChargeCache]/n)
		reportPct(b, "ccnuat%", avg[sim.ChargeCacheNUAT]/n)
		reportPct(b, "lldram%", avg[sim.LLDRAM]/n)
	}
}

// BenchmarkFig7EightCore regenerates Figure 7b: average weighted-speedup
// gains on the multiprogrammed mixes (the paper's headline result).
func BenchmarkFig7EightCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchScale().Fig7Eight()
		if err != nil {
			b.Fatal(err)
		}
		avg := map[sim.MechanismKind]float64{}
		for _, r := range rows {
			for k, v := range r.Speedup {
				avg[k] += v
			}
		}
		n := float64(len(rows))
		reportPct(b, "nuat%", avg[sim.NUAT]/n)
		reportPct(b, "cc%", avg[sim.ChargeCache]/n)
		reportPct(b, "ccnuat%", avg[sim.ChargeCacheNUAT]/n)
		reportPct(b, "lldram%", avg[sim.LLDRAM]/n)
	}
}

// BenchmarkFig8Energy regenerates Figure 8: average and maximum DRAM
// energy reduction of ChargeCache on the eight-core mixes.
func BenchmarkFig8Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchScale().Fig7Eight()
		if err != nil {
			b.Fatal(err)
		}
		sum := experiments.Fig8(rows)
		reportPct(b, "ccavg%", sum.AvgReduction[sim.ChargeCache])
		reportPct(b, "ccmax%", sum.MaxReduction[sim.ChargeCache])
	}
}

// BenchmarkFig9HitRate regenerates Figure 9: HCRAC hit rate at 128
// entries/core versus unlimited capacity (eight-core).
func BenchmarkFig9HitRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchScale().Fig9And10(true, []int{128})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Entries == 128 {
				reportPct(b, "hit128%", r.HitRate)
			}
			if r.Entries == 0 {
				reportPct(b, "hitUnltd%", r.HitRate)
			}
		}
	}
}

// BenchmarkFig10Capacity regenerates Figure 10: speedup at 128 vs 1024
// entries/core (eight-core).
func BenchmarkFig10Capacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchScale().Fig9And10(true, []int{128, 1024})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Entries {
			case 128:
				reportPct(b, "sp128%", r.Speedup)
			case 1024:
				reportPct(b, "sp1024%", r.Speedup)
			}
		}
	}
}

// BenchmarkFig11Duration regenerates Figure 11: speedup at 1ms vs 16ms
// caching durations (eight-core); the paper's argument for 1ms.
func BenchmarkFig11Duration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := benchScale().Fig11(true, []float64{1, 16})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.DurationMs {
			case 1:
				reportPct(b, "sp1ms%", r.Speedup)
			case 16:
				reportPct(b, "sp16ms%", r.Speedup)
			}
		}
	}
}

// BenchmarkOverheadArea regenerates the Section 6.3 hardware-cost
// numbers.
func BenchmarkOverheadArea(b *testing.B) {
	spec := DDR31600(2)
	for i := 0; i < b.N; i++ {
		ov, err := HCRACOverhead(spec, 128, 8, 4<<20, 60e6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(ov.StorageBytes), "bytes")
		b.ReportMetric(ov.AreaMM2*1000, "area_um2x1e3")
		b.ReportMetric(ov.PowerMW*1000, "power_uW")
	}
}

// --- Ablation benches (DESIGN.md §4) ---

// ablationRun measures ChargeCache speedup on one workload under a
// config mutation.
func ablationRun(b *testing.B, workloadName string, mutate func(*sim.Config)) float64 {
	b.Helper()
	mk := func(mech sim.MechanismKind) sim.Config {
		cfg := sim.DefaultConfig(workloadName)
		cfg.WarmupInstructions = 400_000
		cfg.RunInstructions = 200_000
		cfg.Mechanism = mech
		if mutate != nil {
			mutate(&cfg)
		}
		return cfg
	}
	run := func(cfg sim.Config) float64 {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res.PerCore[0].IPC
	}
	base := run(mk(sim.Baseline))
	cc := run(mk(sim.ChargeCache))
	return cc/base - 1
}

// BenchmarkAblationInvalidation compares the paper's cheap IIC/EC
// periodic invalidation against exact per-entry expiry timestamps
// (DESIGN.md ablation 2: the loss from premature invalidation).
func BenchmarkAblationInvalidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		iicec := ablationRun(b, "lbm", nil)
		exact := ablationRun(b, "lbm", func(cfg *sim.Config) {
			cfg.CCInvalidation = core.ExactExpiry
		})
		reportPct(b, "iicec%", iicec)
		reportPct(b, "exact%", exact)
	}
}

// BenchmarkAblationAssociativity compares 2-way against 8-way HCRAC
// (DESIGN.md ablation 3: the paper reports ~2% hit-rate difference to
// full associativity).
func BenchmarkAblationAssociativity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		way2 := ablationRun(b, "tpch17", nil)
		way8 := ablationRun(b, "tpch17", func(cfg *sim.Config) {
			cfg.CCAssoc = 8
		})
		reportPct(b, "assoc2%", way2)
		reportPct(b, "assoc8%", way8)
	}
}

// BenchmarkAblationFixedRC compares the restore-bounded tRC derivation
// (default) against keeping the spec tRC for fast activations (DESIGN.md
// ablation: brackets the paper's unstated nRC choice).
func BenchmarkAblationFixedRC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		derived := ablationRun(b, "lbm", nil)
		fixed := ablationRun(b, "lbm", func(cfg *sim.Config) {
			cfg.FixedRC = true
		})
		reportPct(b, "derivedRC%", derived)
		reportPct(b, "fixedRC%", fixed)
	}
}

// BenchmarkAblationRowPolicy compares ChargeCache gains under open-row
// vs closed-row management on the same workload (DESIGN.md ablation 4).
func BenchmarkAblationRowPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		open := ablationRun(b, "lbm", func(cfg *sim.Config) {
			cfg.RowPolicy = memctrl.OpenRow
		})
		closed := ablationRun(b, "lbm", func(cfg *sim.Config) {
			cfg.RowPolicy = memctrl.ClosedRow
		})
		reportPct(b, "open%", open)
		reportPct(b, "closed%", closed)
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed, the
// engineering metric for the simulator substrate itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig("tpch17")
		cfg.WarmupInstructions = 0
		cfg.RunInstructions = 200_000
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.CPUCycles), "cpu_cycles")
	}
}
